"""Device traces: the per-round column rewrites driving a population.

A :class:`DeviceTrace` is the population's behavior model.  It is bound to
a :class:`~repro.population.population.DeviceStatePopulation` once
(``bind``), then ``apply(population, round_idx)`` runs exactly once per
round (the population's ``advance`` guard) and rewrites whichever columns
the trace owns — ``available`` for plain availability models,
``connectivity``/``responsiveness`` for churn storms, every column for the
device-class model.  Traces compose: :class:`ChurnStormTrace` wraps any
base availability trace and layers burst-round effects on top.

The ``POPULATION_PRESETS`` registry names the scenarios
``RunConfig.population_preset`` accepts; :func:`build_population` turns a
preset name plus a config into a ready population (this is also how
``scheduler="failure"`` gets its storm population).

>>> import numpy as np
>>> from repro.population.population import DeviceStatePopulation
>>> storm = ChurnStormTrace(burst_every=3, burst_dropout=1.0,
...                         straggler_fraction=0.0,
...                         rng=np.random.default_rng(0))
>>> pop = DeviceStatePopulation(4, np.random.default_rng(1), storm)
>>> storm.is_burst(3) and not storm.is_burst(1)
True
>>> _ = pop.online(1)
>>> pop.survives_round(np.array([0, 1])).tolist()   # calm round
[True, True]
>>> _ = pop.online(3)
>>> pop.survives_round(np.array([0, 1])).tolist()   # burst: nobody survives
[False, False]
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.traces.availability import AvailabilityTrace
from repro.traces.diurnal import DiurnalAvailabilityTrace

__all__ = [
    "POPULATION_PRESETS",
    "DeviceTrace",
    "StaticTrace",
    "DutyCycleTrace",
    "DiurnalTrace",
    "DeviceClassTrace",
    "ChurnStormTrace",
    "ExternalAvailabilityTrace",
    "build_population",
]

#: scenario names ``RunConfig.population_preset`` accepts
POPULATION_PRESETS = ("none", "diurnal", "device-classes", "storm")


class DeviceTrace:
    """Base trace: owns nothing, changes nothing (always-on population)."""

    def bind(self, population) -> None:
        """One-time column initialization hook (called by the population)."""

    def apply(self, population, round_idx: int) -> None:
        """Rewrite the population's columns for ``round_idx``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class StaticTrace(DeviceTrace):
    """No dynamics: the constructor baselines hold for the whole run."""


class ExternalAvailabilityTrace(DeviceTrace):
    """Adapt a classic availability trace (duty-cycle, diurnal, or any
    user object with ``online(round_idx)``) into a device trace: the
    wrapped object drives the ``available`` column, everything else keeps
    its baseline."""

    def __init__(self, trace) -> None:
        self.trace = trace

    def apply(self, population, round_idx: int) -> None:
        population.available[:] = self.trace.online(round_idx)


class DutyCycleTrace(ExternalAvailabilityTrace):
    """Per-client duty-cycle availability — the population-column port of
    :class:`~repro.traces.availability.AvailabilityTrace` (mid-round
    dropout lives in the population's connectivity column instead)."""

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        mean_on_fraction: float = 0.8,
        min_period: int = 20,
        max_period: int = 200,
    ) -> None:
        super().__init__(
            AvailabilityTrace(
                num_clients,
                rng,
                mean_on_fraction=mean_on_fraction,
                min_period=min_period,
                max_period=max_period,
                dropout_prob=0.0,
            )
        )


class DiurnalTrace(ExternalAvailabilityTrace):
    """Day/night availability — the population-column port of
    :class:`~repro.traces.diurnal.DiurnalAvailabilityTrace`."""

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        rounds_per_day: int = 48,
        window_hours: float = 8.0,
        jitter_prob: float = 0.05,
    ) -> None:
        super().__init__(
            DiurnalAvailabilityTrace(
                num_clients,
                rng,
                rounds_per_day=rounds_per_day,
                window_hours=window_hours,
                jitter_prob=jitter_prob,
                dropout_prob=0.0,
            )
        )


class DeviceClassTrace(DeviceTrace):
    """Phone / tablet / silo device classes (~70 / 20 / 10 % of clients).

    Each class gets its own availability rate, connectivity, completeness,
    and responsiveness — phones are flaky, slow, and often unable to run
    the full local workload; silos are datacenter-grade.  Completeness is
    floored at ``min_completeness`` and responsiveness capped at
    ``max_responsiveness`` (the ``population_min_completeness`` /
    ``population_max_responsiveness`` config knobs).
    """

    #: per-class (share, online_prob, connectivity, completeness,
    #: responsiveness)
    CLASSES = (
        ("phone", 0.7, 0.70, 0.90, 0.6, 2.0),
        ("tablet", 0.2, 0.80, 0.95, 0.9, 1.3),
        ("silo", 0.1, 0.995, 1.0, 1.0, 1.0),
    )

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        *,
        min_completeness: float = 0.25,
        max_responsiveness: float = 8.0,
    ) -> None:
        shares = np.array([c[1] for c in self.CLASSES])
        self.class_of = rng.choice(
            len(self.CLASSES), size=num_clients, p=shares / shares.sum()
        )
        self._rng = rng
        self.min_completeness = min_completeness
        self.max_responsiveness = max_responsiveness

    def bind(self, population) -> None:
        online_p = np.array([c[2] for c in self.CLASSES])[self.class_of]
        conn = np.array([c[3] for c in self.CLASSES])[self.class_of]
        comp = np.array([c[4] for c in self.CLASSES])[self.class_of]
        resp = np.array([c[5] for c in self.CLASSES])[self.class_of]
        self._online_p = online_p
        population.connectivity[:] = conn
        population.completeness[:] = np.clip(comp, self.min_completeness, 1.0)
        population.responsiveness[:] = np.clip(
            resp, 1.0, self.max_responsiveness
        )

    def apply(self, population, round_idx: int) -> None:
        population.available[:] = (
            self._rng.random(population.num_clients) < self._online_p
        )


class ChurnStormTrace(DeviceTrace):
    """Periodic churn storms over any base availability trace.

    Every ``burst_every``-th round (rounds are 1-based, so the first storm
    lands at round ``burst_every`` — round 1 is never a burst unless
    ``burst_every == 1``) the trace multiplies connectivity by
    ``1 − burst_dropout`` and slows a ``straggler_fraction`` of clients by
    ``straggler_slowdown``×; calm rounds restore the population baselines.
    This is the column-level reimplementation of the old context-knob
    failure injection, so ``scheduler="failure"`` is now just a population
    preset.
    """

    def __init__(
        self,
        base: Optional[DeviceTrace] = None,
        *,
        burst_every: int = 5,
        burst_dropout: float = 0.75,
        straggler_fraction: float = 0.3,
        straggler_slowdown: float = 4.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if burst_every < 0:
            raise ValueError("burst_every must be >= 0")
        self.base = base
        self.burst_every = burst_every
        self.burst_dropout = burst_dropout
        self.straggler_fraction = straggler_fraction
        self.straggler_slowdown = straggler_slowdown
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def bind(self, population) -> None:
        if self.base is not None:
            self.base.bind(population)

    def is_burst(self, round_idx: int) -> bool:
        """True on storm rounds (``round_idx % burst_every == 0``)."""
        return bool(self.burst_every) and round_idx % self.burst_every == 0

    def apply(self, population, round_idx: int) -> None:
        population.connectivity[:] = population.base_connectivity
        population.responsiveness[:] = population.base_responsiveness
        if self.base is not None:
            self.base.apply(population, round_idx)
        if not self.is_burst(round_idx):
            return
        population.connectivity *= 1.0 - self.burst_dropout
        if self.straggler_fraction >= 1.0:
            hit = np.ones(population.num_clients, dtype=bool)
        elif self.straggler_fraction > 0.0:
            hit = (
                self._rng.random(population.num_clients)
                < self.straggler_fraction
            )
        else:
            return
        population.responsiveness[hit] *= self.straggler_slowdown


def build_population(
    preset: str,
    num_clients: int,
    rng: np.random.Generator,
    *,
    config,
):
    """Build the population ``RunConfig.population_preset`` names.

    The base availability comes from the config's classic availability
    knobs — an explicit ``availability_trace`` is adapted column-wise,
    ``always_available`` keeps everyone on, otherwise a duty-cycle trace
    is drawn — and the preset layers its dynamics on top:

    * ``"none"`` — just the base availability (plus baseline connectivity
      ``1 − dropout_prob``);
    * ``"diurnal"`` — day/night windows (:class:`DiurnalTrace`);
    * ``"device-classes"`` — phone/tablet/silo population
      (:class:`DeviceClassTrace`);
    * ``"storm"`` — periodic churn storms over the base availability,
      parameterized by the ``failure_*`` knobs (:class:`ChurnStormTrace`)
      — what ``scheduler="failure"`` runs on.
    """
    from repro.population.population import DeviceStatePopulation

    if preset not in POPULATION_PRESETS:
        raise ValueError(
            f"unknown population preset {preset!r}; "
            f"expected {POPULATION_PRESETS}"
        )

    def base_trace() -> Optional[DeviceTrace]:
        if config.availability_trace is not None:
            return ExternalAvailabilityTrace(config.availability_trace)
        if config.always_available:
            return None
        return DutyCycleTrace(
            num_clients, rng, mean_on_fraction=config.mean_on_fraction
        )

    dropout = 0.0 if config.always_available else config.dropout_prob
    if preset == "none":
        trace = base_trace() or StaticTrace()
    elif preset == "diurnal":
        trace = DiurnalTrace(num_clients, rng)
    elif preset == "device-classes":
        trace = DeviceClassTrace(
            num_clients,
            rng,
            min_completeness=config.population_min_completeness,
            max_responsiveness=config.population_max_responsiveness,
        )
    else:  # "storm"
        trace = ChurnStormTrace(
            base_trace(),
            burst_every=config.failure_burst_every,
            burst_dropout=config.failure_burst_dropout,
            straggler_fraction=config.failure_straggler_fraction,
            straggler_slowdown=config.failure_straggler_slowdown,
            rng=rng,
        )
    return DeviceStatePopulation(
        num_clients,
        rng,
        trace,
        dropout_prob=dropout,
        dropped_cooldown=config.population_dropped_cooldown,
    )
