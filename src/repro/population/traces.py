"""Device traces: the per-round dynamics driving a population.

A :class:`DeviceTrace` is the population's behavior model.  It is bound to
a :class:`~repro.population.population.DeviceStatePopulation` once
(``bind``); after that two advance disciplines exist:

sweep (``apply``)
    ``apply(population, round_idx)`` runs exactly once per queried round
    (the population's ``advance`` guard) and rewrites whichever columns
    the trace owns — ``available`` for plain availability models,
    ``connectivity``/``responsiveness`` for churn storms, every column for
    the device-class model.  O(N) per round, works for any trace.

events (``schedule``)
    ``schedule(population, queue)`` converts the same dynamics into
    transition events on the population's
    :class:`~repro.population.events.PopulationEventQueue` and returns
    ``True``; the population then never calls ``apply`` and each round
    costs O(transitions).  Deterministic dynamics (duty-cycle windows,
    jitter-free diurnal edges) become periodic index flips; RNG-consuming
    dynamics (device-class redraws, diurnal jitter, storm bursts) become
    recurring actions that make *the same draws in the same order* as the
    sweep and write only the changed indices, so both paths are
    bit-identical.  A trace that returns ``False`` (the default, and any
    subclass that overrides ``apply``) keeps the sweep.

Traces compose: :class:`ChurnStormTrace` wraps any base availability trace
and layers burst-round effects on top — in event mode the base's events
touch ``available`` while the storm's recurring action touches
``connectivity``/``responsiveness``, so the composition commutes exactly
like the sweep's restore → base → burst ordering.

The ``POPULATION_PRESETS`` registry names the scenarios
``RunConfig.population_preset`` accepts; :func:`build_population` turns a
preset name plus a config into a ready population (this is also how
``scheduler="failure"`` gets its storm population).

>>> import numpy as np
>>> from repro.population.population import DeviceStatePopulation
>>> storm = ChurnStormTrace(burst_every=3, burst_dropout=1.0,
...                         straggler_fraction=0.0,
...                         rng=np.random.default_rng(0))
>>> pop = DeviceStatePopulation(4, np.random.default_rng(1), storm)
>>> pop.event_driven                 # storms schedule as recurring events
True
>>> storm.is_burst(3) and not storm.is_burst(1)
True
>>> _ = pop.online(1)
>>> pop.survives_round(np.array([0, 1])).tolist()   # calm round
[True, True]
>>> _ = pop.online(3)
>>> pop.survives_round(np.array([0, 1])).tolist()   # burst: nobody survives
[False, False]
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.traces.availability import AvailabilityTrace
from repro.traces.diurnal import DiurnalAvailabilityTrace

__all__ = [
    "POPULATION_PRESETS",
    "DeviceTrace",
    "StaticTrace",
    "DutyCycleTrace",
    "DiurnalTrace",
    "DeviceClassTrace",
    "ChurnStormTrace",
    "ExternalAvailabilityTrace",
    "build_population",
]

#: scenario names ``RunConfig.population_preset`` accepts
POPULATION_PRESETS = ("none", "diurnal", "device-classes", "storm")


class DeviceTrace:
    """Base trace: owns nothing, changes nothing (always-on population)."""

    def bind(self, population) -> None:
        """One-time column initialization hook (called by the population)."""

    def apply(self, population, round_idx: int) -> None:
        """Sweep mode: rewrite the population's columns for ``round_idx``."""

    def schedule(self, population, queue) -> bool:
        """Event mode: translate the trace's dynamics into transition
        events on ``queue`` and return ``True``; returning ``False``
        (the default) keeps the O(N) sweep via ``apply``."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class _PeriodicFlip:
    """Self-rescheduling availability flip for a fixed id group: fire,
    set the bit, re-arm ``period`` rounds after the *scheduled* round (so
    chains stay phase-aligned across round jumps)."""

    __slots__ = ("ids", "value", "period")

    def __init__(self, ids: np.ndarray, value: bool, period: int) -> None:
        self.ids = ids
        self.value = bool(value)
        self.period = int(period)

    def __call__(self, population, fire_round: int) -> None:
        population.set_available(self.ids, self.value)
        population.events.schedule(fire_round + self.period, self)


def _grouped(keys: np.ndarray):
    """Yield ``(key, member_indices)`` per distinct key (sorted order)."""
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    bounds = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
    for i, b in enumerate(bounds):
        e = bounds[i + 1] if i + 1 < len(bounds) else len(sk)
        yield int(sk[b]), order[b:e]


def _first_fire(residue: int, period: int) -> int:
    """Smallest round ≥ 1 congruent to ``residue`` mod ``period``."""
    return residue if residue >= 1 else period


class StaticTrace(DeviceTrace):
    """No dynamics: the constructor baselines hold for the whole run."""

    def schedule(self, population, queue) -> bool:
        # trivially event-capable — unless a subclass re-introduced
        # per-round dynamics through apply(), which only the sweep runs
        return type(self).apply is DeviceTrace.apply


class ExternalAvailabilityTrace(DeviceTrace):
    """Adapt a classic availability trace (duty-cycle, diurnal, or any
    user object with ``online(round_idx)``) into a device trace: the
    wrapped object drives the ``available`` column, everything else keeps
    its baseline.  An arbitrary external object gives us nothing to
    schedule from, so this adapter is the one built-in trace that always
    keeps the O(N) sweep (subclasses wrapping known trace types override
    ``schedule``)."""

    def __init__(self, trace) -> None:
        self.trace = trace

    def apply(self, population, round_idx: int) -> None:
        # repro: allow[population-column-sweep] -- legacy adapter: an external trace only exposes online(round_idx), so the full-column rewrite is the only faithful bridge
        population.available[:] = self.trace.online(round_idx)

    def _diff_apply(self, population, fire_round: int) -> None:
        """Recurring event action: same mask (and RNG draws) as the
        sweep's ``apply``, written as index diffs."""
        new = self.trace.online(fire_round)
        diff = np.flatnonzero(population.available != new)
        if len(diff):
            population.available[diff] = new[diff]
            population.note_available_changed(diff)


class DutyCycleTrace(ExternalAvailabilityTrace):
    """Per-client duty-cycle availability — the population-column port of
    :class:`~repro.traces.availability.AvailabilityTrace` (mid-round
    dropout lives in the population's connectivity column instead).

    Event mode: the wrapped trace's window ``pos < on_fraction · period``
    is an integer interval ``pos ∈ [0, L)`` with ``L = ⌈on_fraction ·
    period⌉``, so each client flips on at rounds ≡ −phase (mod period)
    and off at rounds ≡ L − phase.  Clients sharing ``(period, residue,
    direction)`` form one periodic flip chain — at most ``2 · Σ period``
    chains and O(Σ 1/period · N) touched ids per round, independent of
    how many clients sit between transitions.
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        mean_on_fraction: float = 0.8,
        min_period: int = 20,
        max_period: int = 200,
    ) -> None:
        super().__init__(
            AvailabilityTrace(
                num_clients,
                rng,
                mean_on_fraction=mean_on_fraction,
                min_period=min_period,
                max_period=max_period,
                dropout_prob=0.0,
            )
        )

    def schedule(self, population, queue) -> bool:
        if type(self).apply is not ExternalAvailabilityTrace.apply:
            return False
        t = self.trace
        period = np.asarray(t._period, dtype=np.int64)
        phase = np.asarray(t._phase, dtype=np.int64) % period
        # seed round 0 with the sweep's own expression (bit-identical)
        population.available[:] = t.online(0)
        # integer on-window length: pos < frac·P  ⟺  pos < ceil(frac·P)
        width = t._on_fraction * period
        length = np.clip(np.ceil(width).astype(np.int64), 0, period)
        flips = np.flatnonzero((length > 0) & (length < period))
        if not len(flips):
            return True
        key_base = int(period.max()) + 1
        for value, residue in (
            (True, (-phase[flips]) % period[flips]),
            (False, (length[flips] - phase[flips]) % period[flips]),
        ):
            keys = period[flips] * key_base + residue
            for key, members in _grouped(keys):
                p, res = divmod(key, key_base)
                ids = np.sort(flips[members])
                queue.schedule(
                    _first_fire(res, p), _PeriodicFlip(ids, value, p)
                )
        return True


class DiurnalTrace(ExternalAvailabilityTrace):
    """Day/night availability — the population-column port of
    :class:`~repro.traces.diurnal.DiurnalAvailabilityTrace`.

    Event mode: without jitter each client's window is a circular
    interval of the ``rounds_per_day`` positions, so whole timezone
    groups flip together — O(rounds_per_day) chains total, each firing
    once per simulated day.  With jitter the per-round counter-seeded
    flip draw is inherently O(N), so the trace registers a recurring
    diff-apply that makes the identical draw and writes only changes.
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        rounds_per_day: int = 48,
        window_hours: float = 8.0,
        jitter_prob: float = 0.05,
    ) -> None:
        super().__init__(
            DiurnalAvailabilityTrace(
                num_clients,
                rng,
                rounds_per_day=rounds_per_day,
                window_hours=window_hours,
                jitter_prob=jitter_prob,
                dropout_prob=0.0,
            )
        )

    def schedule(self, population, queue) -> bool:
        if type(self).apply is not ExternalAvailabilityTrace.apply:
            return False
        t = self.trace
        if t.jitter_prob > 0.0:
            queue.add_recurring(self._diff_apply)
            return True
        rounds_per_day = int(t.rounds_per_day)
        masks = [t.online(pos) for pos in range(rounds_per_day)]
        population.available[:] = masks[0]
        for pos in range(rounds_per_day):
            prev = masks[pos - 1]  # pos 0 wraps to the last slot
            cur = masks[pos]
            for ids, value in (
                (np.flatnonzero(cur & ~prev), True),
                (np.flatnonzero(prev & ~cur), False),
            ):
                if len(ids):
                    queue.schedule(
                        _first_fire(pos, rounds_per_day),
                        _PeriodicFlip(ids, value, rounds_per_day),
                    )
        return True


class DeviceClassTrace(DeviceTrace):
    """Phone / tablet / silo device classes (~70 / 20 / 10 % of clients).

    Each class gets its own availability rate, connectivity, completeness,
    and responsiveness — phones are flaky, slow, and often unable to run
    the full local workload; silos are datacenter-grade.  Completeness is
    floored at ``min_completeness`` and responsiveness capped at
    ``max_responsiveness`` (the ``population_min_completeness`` /
    ``population_max_responsiveness`` config knobs).

    The per-round Bernoulli redraw is inherently O(N) (the model *is* an
    independent draw per client per round), so event mode registers a
    recurring action making the identical shared-stream draw and writing
    only the flipped indices.
    """

    #: per-class (share, online_prob, connectivity, completeness,
    #: responsiveness)
    CLASSES = (
        ("phone", 0.7, 0.70, 0.90, 0.6, 2.0),
        ("tablet", 0.2, 0.80, 0.95, 0.9, 1.3),
        ("silo", 0.1, 0.995, 1.0, 1.0, 1.0),
    )

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        *,
        min_completeness: float = 0.25,
        max_responsiveness: float = 8.0,
    ) -> None:
        shares = np.array([c[1] for c in self.CLASSES])
        self.class_of = rng.choice(
            len(self.CLASSES), size=num_clients, p=shares / shares.sum()
        )
        self._rng = rng
        self.min_completeness = min_completeness
        self.max_responsiveness = max_responsiveness

    def bind(self, population) -> None:
        online_p = np.array([c[2] for c in self.CLASSES])[self.class_of]
        conn = np.array([c[3] for c in self.CLASSES])[self.class_of]
        comp = np.array([c[4] for c in self.CLASSES])[self.class_of]
        resp = np.array([c[5] for c in self.CLASSES])[self.class_of]
        self._online_p = online_p
        population.connectivity[:] = conn
        population.completeness[:] = np.clip(comp, self.min_completeness, 1.0)
        population.responsiveness[:] = np.clip(
            resp, 1.0, self.max_responsiveness
        )

    def apply(self, population, round_idx: int) -> None:
        # repro: allow[population-column-sweep] -- sweep reference path: schedule() is the primary, diff-writing implementation
        population.available[:] = (
            self._rng.random(population.num_clients) < self._online_p
        )

    def schedule(self, population, queue) -> bool:
        if type(self).apply is not DeviceClassTrace.apply:
            return False
        queue.add_recurring(self._redraw)
        return True

    def _redraw(self, population, fire_round: int) -> None:
        new = self._rng.random(population.num_clients) < self._online_p
        diff = np.flatnonzero(population.available != new)
        if len(diff):
            population.available[diff] = new[diff]
            population.note_available_changed(diff)


class ChurnStormTrace(DeviceTrace):
    """Periodic churn storms over any base availability trace.

    Every ``burst_every``-th round (rounds are 1-based, so the first storm
    lands at round ``burst_every`` — round 1 is never a burst unless
    ``burst_every == 1``) the trace multiplies connectivity by
    ``1 − burst_dropout`` and slows a ``straggler_fraction`` of clients by
    ``straggler_slowdown``×; calm rounds restore the population baselines.
    This is the column-level reimplementation of the old context-knob
    failure injection, so ``scheduler="failure"`` is now just a population
    preset.

    Event mode composes: the base trace's events keep driving
    ``available`` while a recurring storm action handles bursts.  Calm →
    calm rounds cost nothing — the restore (an exact copy from the
    population's baseline snapshots, never a multiplicative undo) runs
    only on the round after a burst, and the straggler draw stays on the
    shared RNG stream in sweep order.
    """

    def __init__(
        self,
        base: Optional[DeviceTrace] = None,
        *,
        burst_every: int = 5,
        burst_dropout: float = 0.75,
        straggler_fraction: float = 0.3,
        straggler_slowdown: float = 4.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if burst_every < 0:
            raise ValueError("burst_every must be >= 0")
        self.base = base
        self.burst_every = burst_every
        self.burst_dropout = burst_dropout
        self.straggler_fraction = straggler_fraction
        self.straggler_slowdown = straggler_slowdown
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bursted = False
        self._hit_ids: Optional[np.ndarray] = None

    def bind(self, population) -> None:
        if self.base is not None:
            self.base.bind(population)

    def is_burst(self, round_idx: int) -> bool:
        """True on storm rounds (``round_idx % burst_every == 0``)."""
        return bool(self.burst_every) and round_idx % self.burst_every == 0

    def apply(self, population, round_idx: int) -> None:
        # repro: allow[population-column-sweep] -- sweep reference path: schedule() is the primary, restore-on-demand implementation
        population.connectivity[:] = population.base_connectivity
        population.responsiveness[:] = population.base_responsiveness
        if self.base is not None:
            self.base.apply(population, round_idx)
        if not self.is_burst(round_idx):
            return
        population.connectivity *= 1.0 - self.burst_dropout
        if self.straggler_fraction >= 1.0:
            hit = np.ones(population.num_clients, dtype=bool)
        elif self.straggler_fraction > 0.0:
            hit = (
                self._rng.random(population.num_clients)
                < self.straggler_fraction
            )
        else:
            return
        population.responsiveness[hit] *= self.straggler_slowdown

    def schedule(self, population, queue) -> bool:
        if type(self).apply is not ChurnStormTrace.apply:
            return False
        if self.base is not None and not self.base.schedule(population, queue):
            return False
        self._bursted = False
        self._hit_ids = None
        queue.add_recurring(self._storm_step)
        return True

    def _storm_step(self, population, fire_round: int) -> None:
        if self._hit_ids is not None:
            population.responsiveness[self._hit_ids] = (
                population.base_responsiveness[self._hit_ids]
            )
            self._hit_ids = None
        if self._bursted:
            population.connectivity[:] = population.base_connectivity
            self._bursted = False
        if not self.is_burst(fire_round):
            return
        population.connectivity *= 1.0 - self.burst_dropout
        self._bursted = True
        if self.straggler_fraction >= 1.0:
            hit = np.ones(population.num_clients, dtype=bool)
        elif self.straggler_fraction > 0.0:
            hit = (
                self._rng.random(population.num_clients)
                < self.straggler_fraction
            )
        else:
            return
        hit_ids = np.flatnonzero(hit)
        population.responsiveness[hit_ids] *= self.straggler_slowdown
        self._hit_ids = hit_ids


def build_population(
    preset: str,
    num_clients: int,
    rng: np.random.Generator,
    *,
    config,
):
    """Build the population ``RunConfig.population_preset`` names.

    The base availability comes from the config's classic availability
    knobs — an explicit ``availability_trace`` is adapted column-wise,
    ``always_available`` keeps everyone on, otherwise a duty-cycle trace
    is drawn — and the preset layers its dynamics on top:

    * ``"none"`` — just the base availability (plus baseline connectivity
      ``1 − dropout_prob``);
    * ``"diurnal"`` — day/night windows (:class:`DiurnalTrace`);
    * ``"device-classes"`` — phone/tablet/silo population
      (:class:`DeviceClassTrace`);
    * ``"storm"`` — periodic churn storms over the base availability,
      parameterized by the ``failure_*`` knobs (:class:`ChurnStormTrace`)
      — what ``scheduler="failure"`` runs on.

    ``config.population_event_driven`` picks the advance discipline
    (``None`` = event mode whenever the trace supports it) and
    ``config.population_scalable_sampling`` marks the population for
    O(idle) pool-based sampler draws.
    """
    from repro.population.population import DeviceStatePopulation

    if preset not in POPULATION_PRESETS:
        raise ValueError(
            f"unknown population preset {preset!r}; "
            f"expected {POPULATION_PRESETS}"
        )

    def base_trace() -> Optional[DeviceTrace]:
        if config.availability_trace is not None:
            return ExternalAvailabilityTrace(config.availability_trace)
        if config.always_available:
            return None
        return DutyCycleTrace(
            num_clients, rng, mean_on_fraction=config.mean_on_fraction
        )

    dropout = 0.0 if config.always_available else config.dropout_prob
    if preset == "none":
        trace = base_trace() or StaticTrace()
    elif preset == "diurnal":
        trace = DiurnalTrace(num_clients, rng)
    elif preset == "device-classes":
        trace = DeviceClassTrace(
            num_clients,
            rng,
            min_completeness=config.population_min_completeness,
            max_responsiveness=config.population_max_responsiveness,
        )
    else:  # "storm"
        trace = ChurnStormTrace(
            base_trace(),
            burst_every=config.failure_burst_every,
            burst_dropout=config.failure_burst_dropout,
            straggler_fraction=config.failure_straggler_fraction,
            straggler_slowdown=config.failure_straggler_slowdown,
            rng=rng,
        )
    return DeviceStatePopulation(
        num_clients,
        rng,
        trace,
        dropout_prob=dropout,
        dropped_cooldown=config.population_dropped_cooldown,
        event_driven=getattr(config, "population_event_driven", None),
        scalable_sampling=getattr(
            config, "population_scalable_sampling", False
        ),
    )
