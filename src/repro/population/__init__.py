"""Vectorized device-state population + fault-injection traces.

:class:`DeviceStatePopulation` models every client as rows in numpy state
columns (availability, connectivity, completeness, responsiveness, plus an
idle/working/offline/dropped state machine) — no per-client Python
objects, so federations scale to 10⁵–10⁶ clients.  It duck-types the
classic availability-trace protocol, so the server plugs it in as its
availability model unchanged; :mod:`repro.population.traces` provides the
per-round dynamics (duty-cycle, diurnal, device classes, churn storms) and
the ``population_preset`` registry.
"""

from repro.population.population import (
    DROPPED,
    IDLE,
    OFFLINE,
    WORKING,
    DeviceStatePopulation,
)
from repro.population.traces import (
    POPULATION_PRESETS,
    ChurnStormTrace,
    DeviceClassTrace,
    DeviceTrace,
    DiurnalTrace,
    DutyCycleTrace,
    ExternalAvailabilityTrace,
    StaticTrace,
    build_population,
)

__all__ = [
    "DeviceStatePopulation",
    "IDLE",
    "WORKING",
    "OFFLINE",
    "DROPPED",
    "DeviceTrace",
    "StaticTrace",
    "DutyCycleTrace",
    "DiurnalTrace",
    "DeviceClassTrace",
    "ChurnStormTrace",
    "ExternalAvailabilityTrace",
    "POPULATION_PRESETS",
    "build_population",
]
