"""Vectorized device-state population + fault-injection traces.

:class:`DeviceStatePopulation` models every client as rows in numpy state
columns (availability, connectivity, completeness, responsiveness, plus an
idle/working/offline/dropped state machine) — no per-client Python
objects, so federations scale to 10⁵–10⁶ clients.  It duck-types the
classic availability-trace protocol, so the server plugs it in as its
availability model unchanged; :mod:`repro.population.traces` provides the
per-round dynamics (duty-cycle, diurnal, device classes, churn storms) and
the ``population_preset`` registry.

Populations advance either by the legacy O(N) column sweep or — whenever
the trace's ``schedule`` hook supports it, which all built-in traces do —
by draining transition events from a
:class:`~repro.population.events.PopulationEventQueue`, touching only the
clients that actually change state.  The event path is bit-identical to
the sweep and exposes :class:`~repro.population.population.IdlePool` for
O(idle) sampler draws at fleet scale.
"""

from repro.population.events import PopulationEventQueue
from repro.population.population import (
    DROPPED,
    IDLE,
    OFFLINE,
    WORKING,
    DeviceStatePopulation,
    IdlePool,
)
from repro.population.traces import (
    POPULATION_PRESETS,
    ChurnStormTrace,
    DeviceClassTrace,
    DeviceTrace,
    DiurnalTrace,
    DutyCycleTrace,
    ExternalAvailabilityTrace,
    StaticTrace,
    build_population,
)

__all__ = [
    "DeviceStatePopulation",
    "IdlePool",
    "PopulationEventQueue",
    "IDLE",
    "WORKING",
    "OFFLINE",
    "DROPPED",
    "DeviceTrace",
    "StaticTrace",
    "DutyCycleTrace",
    "DiurnalTrace",
    "DeviceClassTrace",
    "ChurnStormTrace",
    "ExternalAvailabilityTrace",
    "POPULATION_PRESETS",
    "build_population",
]
