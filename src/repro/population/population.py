"""Vectorized device-state population: every client is a row, not an object.

FLGo-style system simulators give every client a Python object with an
idle/working/offline/dropped state machine.  That design caps the
federation size at whatever fits in object overhead; this module keeps the
same state machine but stores the whole population as parallel numpy
columns, so 10⁵–10⁶ clients cost a few flat arrays:

``state``
    int8 state machine: ``IDLE`` (0, selectable), ``WORKING`` (1, training
    this round), ``OFFLINE`` (2, unavailable per the device trace), and
    ``DROPPED`` (3, failed mid-round; sits out ``dropped_cooldown`` rounds).
``available``
    The device trace's online mask (duty cycle, diurnal window, …).
``connectivity``
    Per-client probability that an upload survives the round — the
    vectorized generalization of the availability trace's scalar
    ``dropout_prob`` (survive probability = connectivity).
``completeness``
    Fraction of the configured local steps the device can actually run;
    partial completeness yields partial-work updates whose aggregation
    weights are scaled down honestly (see the execution phase).
``responsiveness``
    Compute-time multiplier (1.0 = nominal; a straggler storm sets it > 1).

The population *is* the server's availability model: it duck-types the
:class:`~repro.traces.availability.AvailabilityTrace` protocol (``online``,
``survives_round``, ``burst_survives``, ``straggler_mask``) so every
scheduler consumes it unchanged, and adds the state-machine API the engine
phases drive (``begin_work`` → ``finish_round``).  State advances once per
round, on the first ``online(round_idx)`` call.

Two advance disciplines share that contract:

sweep mode (legacy)
    Expired drops revive by an O(N) scan, the bound
    :class:`~repro.population.traces.DeviceTrace` rewrites full columns in
    ``apply``, and every non-working device re-settles.  Any trace works
    here, including arbitrary user subclasses that poke columns directly.

event mode (default whenever the trace supports it)
    At bind time the trace converts its dynamics into transition events on
    a :class:`~repro.population.events.PopulationEventQueue`; ``advance``
    drains due events and settles *only the touched ids*, drop-cooldown
    revivals are scheduled events instead of scans, and a maintained
    idle-index structure (``idle_pool``) lets samplers draw from O(idle)
    without N-wide masks.  ``state_counts`` reads O(1) counters maintained
    at transition time.  The event path is bit-identical to the sweep for
    every built-in trace (the differential suite in
    ``tests/properties/test_props_population_events.py`` proves it);
    custom traces that only implement ``apply`` silently keep the sweep.
    In event mode, mutate ``state`` only through the API
    (``begin_work`` / ``complete_work`` / ``drop_work`` /
    ``finish_round``) — direct pokes desync the counters and idle index.

>>> import numpy as np
>>> pop = DeviceStatePopulation(4, np.random.default_rng(0))
>>> pop.event_driven                # StaticTrace schedules trivially
True
>>> pop.online(1).tolist()
[True, True, True, True]
>>> pop.begin_work(np.array([0, 1]))
>>> pop.online(1).tolist()          # working devices are not selectable
[False, False, True, True]
>>> pop.finish_round(1, dropped_ids=np.array([1]))
>>> pop.online(2).tolist()          # 0 is idle again; 1 sits out a round
[True, False, True, True]
>>> pop.online(3).tolist()          # the drop cooldown expired
[True, True, True, True]
>>> pop.state_counts() == {"idle": 4, "working": 0, "offline": 0,
...                        "dropped": 0}
True
>>> pool = pop.idle_pool(3)         # O(idle) sampling view
>>> sorted(pool.ids.tolist()), len(pool)
([0, 1, 2, 3], 4)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.population.events import PopulationEventQueue

__all__ = [
    "IDLE",
    "WORKING",
    "OFFLINE",
    "DROPPED",
    "IdlePool",
    "DeviceStatePopulation",
]

IDLE = 0
WORKING = 1
OFFLINE = 2
DROPPED = 3

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _as_ids(client_ids) -> np.ndarray:
    return np.asarray(client_ids, dtype=np.int64)


class _ReviveEvent:
    """Scheduled drop-cooldown expiry: settle the ids back in by their
    current availability (the event-mode replacement for the sweep's
    O(N) ``state == DROPPED`` scan)."""

    __slots__ = ("ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = ids

    def __call__(self, population, fire_round: int) -> None:
        population._revive(self.ids)


class IdlePool:
    """O(idle) view over the population's maintained idle index.

    Handed to samplers via :meth:`DeviceStatePopulation.idle_pool` so
    draws never materialize an N-wide boolean mask.  ``sample`` uses
    batched rejection sampling over the dense id array — O(k) for k
    requested ids — and is a *different RNG stream* than the mask-based
    ``draw`` path (scalable sampling is opt-in for exactly that reason).
    """

    __slots__ = ("_pop",)

    def __init__(self, population: "DeviceStatePopulation") -> None:
        self._pop = population

    def __len__(self) -> int:
        return int(self._pop._idle_len)

    @property
    def ids(self) -> np.ndarray:
        """Dense array of the currently idle client ids (unordered)."""
        return self._pop._idle_ids[: self._pop._idle_len]

    def contains(self, client_ids) -> np.ndarray:
        """Boolean mask: which of ``client_ids`` are idle right now."""
        return self._pop.state[_as_ids(client_ids)] == IDLE

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        exclude: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Draw up to ``size`` distinct idle ids uniformly, skipping
        ``exclude``; returns fewer when the eligible pool is smaller."""
        n = len(self)
        seen = {int(c) for c in exclude} if exclude is not None else set()
        if n == 0 or size <= 0:
            return _EMPTY_IDS.copy()
        eligible = n
        if seen:
            exc = np.fromiter(seen, dtype=np.int64, count=len(seen))
            in_range = exc[(exc >= 0) & (exc < self._pop.num_clients)]
            eligible = n - int(np.count_nonzero(self.contains(in_range)))
        size = min(int(size), eligible)
        ids = self.ids
        chosen: list = []
        while len(chosen) < size:
            need = size - len(chosen)
            draw = rng.integers(0, n, size=max(2 * need, 16))
            for idx in draw:
                cid = int(ids[idx])
                if cid in seen:
                    continue
                seen.add(cid)
                chosen.append(cid)
                if len(chosen) == size:
                    break
        return np.asarray(chosen, dtype=np.int64)


class DeviceStatePopulation:
    """All clients as numpy state columns with an idle/working/offline/
    dropped state machine (see the module docstring for the columns).

    Parameters
    ----------
    num_clients:
        Federation size N.
    rng:
        Source of the mid-round survival draws (the same role the
        availability trace's RNG plays).
    trace:
        A :class:`~repro.population.traces.DeviceTrace` that drives the
        columns each round; ``None`` keeps the constructor baselines
        (always available, uniform connectivity).
    dropout_prob:
        Baseline mid-round dropout: initial connectivity is
        ``1 − dropout_prob`` for every client.
    dropped_cooldown:
        How many rounds a mid-round-dropped client sits out before
        returning to the idle pool (0 = back next round).
    event_driven:
        ``None`` (default) enables the event-driven advance whenever the
        trace's ``schedule`` hook supports it and falls back to the sweep
        otherwise; ``True`` requires event support (raises if the trace
        has none); ``False`` forces the legacy sweep (the differential
        suite's reference path).
    scalable_sampling:
        Advisory flag the engine reads to route sampling through
        :meth:`idle_pool` instead of N-wide ``online`` masks.
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        trace=None,
        *,
        dropout_prob: float = 0.0,
        dropped_cooldown: int = 1,
        event_driven: Optional[bool] = None,
        scalable_sampling: bool = False,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if dropped_cooldown < 0:
            raise ValueError("dropped_cooldown must be >= 0")
        self.num_clients = num_clients
        self.dropout_prob = float(dropout_prob)
        self.dropped_cooldown = int(dropped_cooldown)
        self._rng = rng

        n = num_clients
        self.available = np.ones(n, dtype=bool)
        self.connectivity = np.full(n, 1.0 - dropout_prob)
        self.completeness = np.ones(n)
        self.responsiveness = np.ones(n)
        self.state = np.zeros(n, dtype=np.int8)
        self._drop_until = np.full(n, -1, dtype=np.int64)
        self._round = -1

        if trace is None:
            from repro.population.traces import StaticTrace

            trace = StaticTrace()
        self.trace = trace
        trace.bind(self)
        # post-bind snapshots: the columns a trace restores on calm rounds
        self.base_connectivity = self.connectivity.copy()
        self.base_responsiveness = self.responsiveness.copy()
        self.base_completeness = self.completeness.copy()

        # -- transition bookkeeping (event mode keeps these live; the
        #    sweep rebuilds the idle index lazily via ``_idle_dirty``)
        self.events = PopulationEventQueue()
        self._working_set: set = set()
        self._pending_settle: list = []
        self._touch_buf: Optional[list] = None
        self._counts = np.zeros(4, dtype=np.int64)
        self._counts[IDLE] = n
        self._idle_ids = np.empty(n, dtype=np.int64)
        self._idle_pos = np.full(n, -1, dtype=np.int64)
        self._idle_len = 0
        self._idle_dirty = True

        scheduled = False
        if event_driven is None or event_driven:
            scheduled = bool(trace.schedule(self, self.events))
        if event_driven and not scheduled:
            raise ValueError(
                f"trace {type(trace).__name__} has no event schedule; "
                "event_driven=True needs a trace whose schedule() hook "
                "returns True (or event_driven=None to auto-fallback)"
            )
        self.event_driven = scheduled
        self.scalable_sampling = bool(scalable_sampling)
        if self.event_driven:
            # settle everyone once against the trace's round-0
            # availability and seed the idle index — the only O(N) settle
            # the event path ever pays
            off = np.flatnonzero(~self.available)
            self.state[off] = OFFLINE
            self._counts[IDLE] = n - len(off)
            self._counts[OFFLINE] = len(off)
            self._idle_add(np.flatnonzero(self.available))
            self._idle_dirty = False

    # -- idle-index maintenance ----------------------------------------------------
    def _idle_add(self, ids: np.ndarray) -> None:
        k = len(ids)
        if not k:
            return
        end = self._idle_len + k
        self._idle_ids[self._idle_len : end] = ids
        self._idle_pos[ids] = np.arange(self._idle_len, end, dtype=np.int64)
        self._idle_len = end

    def _idle_remove(self, ids: np.ndarray) -> None:
        k = len(ids)
        if not k:
            return
        pos = self._idle_pos[ids]
        new_len = self._idle_len - k
        holes = pos[pos < new_len]
        self._idle_pos[ids] = -1
        tail = self._idle_ids[new_len : self._idle_len]
        movers = tail[self._idle_pos[tail] >= 0]
        self._idle_ids[holes] = movers
        self._idle_pos[movers] = holes
        self._idle_len = new_len

    def _transition(self, ids: np.ndarray, new_state: int) -> None:
        """Event-mode state write for unique ``ids`` with live counters
        and idle-index upkeep."""
        if not len(ids):
            return
        old = self.state[ids]
        self.state[ids] = new_state
        self._counts -= np.bincount(old, minlength=4)
        self._counts[new_state] += len(ids)
        if new_state == IDLE:
            self._idle_add(ids[old != IDLE])
        else:
            self._idle_remove(ids[old == IDLE])

    def _settle_ids(self, ids: np.ndarray) -> None:
        """Event-mode settle: idle/offline per ``available`` for the
        touched, non-working, non-dropped ids only."""
        st = self.state[ids]
        ids = ids[(st != WORKING) & (st != DROPPED)]
        if not len(ids):
            return
        old = self.state[ids]
        new = np.where(self.available[ids], IDLE, OFFLINE).astype(np.int8)
        changed = old != new
        if not changed.any():
            return
        cids = ids[changed]
        cnew = new[changed]
        cold = old[changed]
        self.state[cids] = cnew
        self._counts -= np.bincount(cold, minlength=4)
        self._counts += np.bincount(cnew, minlength=4)
        self._idle_remove(cids[cold == IDLE])
        self._idle_add(cids[cnew == IDLE])

    def _revive(self, ids: np.ndarray) -> None:
        """Drop-cooldown expiry (event mode): settle straight from
        ``DROPPED`` into idle/offline by current availability."""
        ids = ids[self.state[ids] == DROPPED]
        if not len(ids):
            return
        new = np.where(self.available[ids], IDLE, OFFLINE).astype(np.int8)
        self.state[ids] = new
        self._counts[DROPPED] -= len(ids)
        self._counts += np.bincount(new, minlength=4)
        self._idle_add(ids[new == IDLE])

    # -- trace-facing column writes ------------------------------------------------
    def set_available(self, ids: np.ndarray, value: bool) -> None:
        """Event-action helper: flip ``available`` for ``ids`` and queue
        them for settling at the end of the current ``advance``."""
        self.available[ids] = value
        self.note_available_changed(ids)

    def note_available_changed(self, ids) -> None:
        """Record ids whose ``available`` bit an event action rewrote in
        place, so ``advance`` re-settles exactly those."""
        if self._touch_buf is not None and len(ids):
            self._touch_buf.append(_as_ids(ids))

    # -- round state machine -----------------------------------------------------
    def advance(self, round_idx: int) -> None:
        """Advance the state columns to ``round_idx`` (idempotent per round).

        Sweep mode revives expired drops, lets the device trace rewrite
        the columns, then settles every non-working, non-dropped device.
        Event mode drains due transition events and settles only the
        touched ids — O(transitions), not O(N).
        """
        if round_idx == self._round:
            return
        self._round = round_idx
        if self.event_driven:
            self._advance_events(round_idx)
            return
        revive = (self.state == DROPPED) & (round_idx > self._drop_until)
        self.state[revive] = IDLE
        self.trace.apply(self, round_idx)
        settled = (self.state != WORKING) & (self.state != DROPPED)
        self.state[settled] = np.where(
            self.available[settled], IDLE, OFFLINE
        ).astype(np.int8)
        self._idle_dirty = True

    def _advance_events(self, round_idx: int) -> None:
        touched: list = list(self._pending_settle)
        self._pending_settle = []
        self._touch_buf = touched
        try:
            for fire_round, action in self.events.pop_due(round_idx):
                action(self, fire_round)
            for action in self.events.recurring:
                action(self, round_idx)
        finally:
            self._touch_buf = None
        if touched:
            self._settle_ids(np.unique(np.concatenate(touched)))

    def online(self, round_idx: int) -> np.ndarray:
        """Boolean mask of *selectable* clients: idle at ``round_idx``.

        Materializes an N-wide mask — scalable callers should prefer
        :meth:`idle_pool`."""
        self.advance(round_idx)
        return self.state == IDLE

    def online_clients(self, round_idx: int) -> np.ndarray:
        """Ids of selectable clients at ``round_idx``."""
        return np.flatnonzero(self.online(round_idx))

    def idle_pool(self, round_idx: int) -> IdlePool:
        """Advance to ``round_idx`` and return the O(idle) sampling view.

        Event mode maintains the index at transition time; sweep mode
        rebuilds it lazily after each full-column advance."""
        self.advance(round_idx)
        if self._idle_dirty:
            idle = np.flatnonzero(self.state == IDLE)
            self._idle_len = len(idle)
            self._idle_ids[: len(idle)] = idle
            self._idle_pos.fill(-1)
            self._idle_pos[idle] = np.arange(len(idle), dtype=np.int64)
            self._idle_dirty = False
        return IdlePool(self)

    def begin_work(self, client_ids: np.ndarray) -> None:
        """Mark contacted candidates as working — out of the idle pool."""
        if not len(client_ids):
            return
        ids = _as_ids(client_ids)
        if self.event_driven:
            self._transition(np.unique(ids), WORKING)
        else:
            self.state[ids] = WORKING
            self._idle_dirty = True
        self._working_set.update(int(c) for c in ids)

    def complete_work(self, client_ids: np.ndarray) -> None:
        """Per-client round completion (continuous schedulers): working
        devices return to idle without waiting for ``finish_round``."""
        if not len(client_ids):
            return
        ids = np.unique(_as_ids(client_ids))
        self._working_set.difference_update(int(c) for c in ids)
        ids = ids[self.state[ids] == WORKING]
        if self.event_driven:
            self._transition(ids, IDLE)
            if len(ids):
                self._pending_settle.append(ids)
        else:
            self.state[ids] = IDLE
            self._idle_dirty = True

    def drop_work(self, client_ids: np.ndarray, round_idx: int) -> None:
        """Per-client mid-round failure (continuous schedulers): enter
        ``DROPPED`` until ``round_idx + dropped_cooldown`` has passed."""
        if not len(client_ids):
            return
        ids = np.unique(_as_ids(client_ids))
        self._working_set.difference_update(int(c) for c in ids)
        self._drop_until[ids] = round_idx + self.dropped_cooldown
        if self.event_driven:
            self._transition(ids, DROPPED)
            self.events.schedule(
                round_idx + self.dropped_cooldown + 1, _ReviveEvent(ids)
            )
        else:
            self.state[ids] = DROPPED
            self._idle_dirty = True

    def finish_round(
        self, round_idx: int, dropped_ids: Optional[np.ndarray] = None
    ) -> None:
        """Close the round: working devices return to idle, mid-round
        failures enter ``DROPPED`` until ``round_idx + dropped_cooldown``
        has passed."""
        dropped = (
            _as_ids(dropped_ids)
            if dropped_ids is not None and len(dropped_ids)
            else None
        )
        if self.event_driven:
            working = np.fromiter(
                self._working_set, dtype=np.int64, count=len(self._working_set)
            )
            working.sort()
            self._working_set.clear()
            returned = (
                np.setdiff1d(working, dropped) if dropped is not None else working
            )
            self._transition(returned, IDLE)
            if len(returned):
                self._pending_settle.append(returned)
            if dropped is not None:
                uniq = np.unique(dropped)
                self._transition(uniq, DROPPED)
                self._drop_until[uniq] = round_idx + self.dropped_cooldown
                self.events.schedule(
                    round_idx + self.dropped_cooldown + 1, _ReviveEvent(uniq)
                )
            return
        self.state[self.state == WORKING] = IDLE
        self._working_set.clear()
        if dropped is not None:
            self.state[dropped] = DROPPED
            self._drop_until[dropped] = round_idx + self.dropped_cooldown
        self._idle_dirty = True

    # -- AvailabilityTrace protocol ----------------------------------------------
    def survives_round(self, client_ids: np.ndarray) -> np.ndarray:
        """Mid-round survival draw from the per-client connectivity column."""
        ids = _as_ids(client_ids)
        conn = self.connectivity[ids]
        if np.all(conn >= 1.0):
            return np.ones(len(ids), dtype=bool)
        return self._rng.random(len(ids)) < conn

    def burst_survives(
        self, client_ids: np.ndarray, extra_prob: float
    ) -> np.ndarray:
        """Extra dropout draw (legacy context-knob compatibility)."""
        if extra_prob <= 0.0:
            return np.ones(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) >= extra_prob

    def straggler_mask(
        self, client_ids: np.ndarray, fraction: float
    ) -> np.ndarray:
        """Storm-hit draw (legacy context-knob compatibility)."""
        if fraction <= 0.0:
            return np.zeros(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) < fraction

    # -- column reads -------------------------------------------------------------
    def responsiveness_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Compute-time multipliers for ``client_ids``."""
        return self.responsiveness[_as_ids(client_ids)]

    def completeness_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Work-fraction column for ``client_ids``."""
        return self.completeness[_as_ids(client_ids)]

    def local_steps_for(
        self, client_ids: np.ndarray, local_steps: int
    ) -> np.ndarray:
        """Realized local steps: ``ceil(completeness · E)``, at least 1."""
        frac = self.completeness_of(client_ids)
        steps = np.ceil(frac * local_steps)
        return np.maximum(1, steps).astype(np.int64)

    def state_counts(self) -> Dict[str, int]:
        """``{"idle": …, "working": …, "offline": …, "dropped": …}``.

        Event mode reads the O(1) counters maintained at transition time;
        the sweep recomputes the truth (direct ``state`` pokes are legal
        there)."""
        counts = (
            self._counts
            if self.event_driven
            else np.bincount(self.state, minlength=4)
        )
        return {
            "idle": int(counts[IDLE]),
            "working": int(counts[WORKING]),
            "offline": int(counts[OFFLINE]),
            "dropped": int(counts[DROPPED]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceStatePopulation(n={self.num_clients}, "
            f"trace={type(self.trace).__name__}, "
            f"mode={'event' if self.event_driven else 'sweep'}, "
            f"{self.state_counts()})"
        )
