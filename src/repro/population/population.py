"""Vectorized device-state population: every client is a row, not an object.

FLGo-style system simulators give every client a Python object with an
idle/working/offline/dropped state machine.  That design caps the
federation size at whatever fits in object overhead; this module keeps the
same state machine but stores the whole population as parallel numpy
columns, so 10⁵–10⁶ clients cost a few flat arrays:

``state``
    int8 state machine: ``IDLE`` (0, selectable), ``WORKING`` (1, training
    this round), ``OFFLINE`` (2, unavailable per the device trace), and
    ``DROPPED`` (3, failed mid-round; sits out ``dropped_cooldown`` rounds).
``available``
    The device trace's online mask (duty cycle, diurnal window, …).
``connectivity``
    Per-client probability that an upload survives the round — the
    vectorized generalization of the availability trace's scalar
    ``dropout_prob`` (survive probability = connectivity).
``completeness``
    Fraction of the configured local steps the device can actually run;
    partial completeness yields partial-work updates whose aggregation
    weights are scaled down honestly (see the execution phase).
``responsiveness``
    Compute-time multiplier (1.0 = nominal; a straggler storm sets it > 1).

The population *is* the server's availability model: it duck-types the
:class:`~repro.traces.availability.AvailabilityTrace` protocol (``online``,
``survives_round``, ``burst_survives``, ``straggler_mask``) so every
scheduler consumes it unchanged, and adds the state-machine API the engine
phases drive (``begin_work`` → ``finish_round``).  State advances once per
round, on the first ``online(round_idx)`` call: expired drops revive, the
bound :class:`~repro.population.traces.DeviceTrace` rewrites the columns,
and non-working devices settle into idle/offline.

>>> import numpy as np
>>> pop = DeviceStatePopulation(4, np.random.default_rng(0))
>>> pop.online(1).tolist()
[True, True, True, True]
>>> pop.begin_work(np.array([0, 1]))
>>> pop.online(1).tolist()          # working devices are not selectable
[False, False, True, True]
>>> pop.finish_round(1, dropped_ids=np.array([1]))
>>> pop.online(2).tolist()          # 0 is idle again; 1 sits out a round
[True, False, True, True]
>>> pop.online(3).tolist()          # the drop cooldown expired
[True, True, True, True]
>>> pop.state_counts() == {"idle": 4, "working": 0, "offline": 0,
...                        "dropped": 0}
True
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = [
    "IDLE",
    "WORKING",
    "OFFLINE",
    "DROPPED",
    "DeviceStatePopulation",
]

IDLE = 0
WORKING = 1
OFFLINE = 2
DROPPED = 3


class DeviceStatePopulation:
    """All clients as numpy state columns with an idle/working/offline/
    dropped state machine (see the module docstring for the columns).

    Parameters
    ----------
    num_clients:
        Federation size N.
    rng:
        Source of the mid-round survival draws (the same role the
        availability trace's RNG plays).
    trace:
        A :class:`~repro.population.traces.DeviceTrace` that rewrites the
        columns each round; ``None`` keeps the constructor baselines
        (always available, uniform connectivity).
    dropout_prob:
        Baseline mid-round dropout: initial connectivity is
        ``1 − dropout_prob`` for every client.
    dropped_cooldown:
        How many rounds a mid-round-dropped client sits out before
        returning to the idle pool (0 = back next round).
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        trace=None,
        *,
        dropout_prob: float = 0.0,
        dropped_cooldown: int = 1,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if dropped_cooldown < 0:
            raise ValueError("dropped_cooldown must be >= 0")
        self.num_clients = num_clients
        self.dropout_prob = float(dropout_prob)
        self.dropped_cooldown = int(dropped_cooldown)
        self._rng = rng

        n = num_clients
        self.available = np.ones(n, dtype=bool)
        self.connectivity = np.full(n, 1.0 - dropout_prob)
        self.completeness = np.ones(n)
        self.responsiveness = np.ones(n)
        self.state = np.zeros(n, dtype=np.int8)
        self._drop_until = np.full(n, -1, dtype=np.int64)
        self._round = -1

        if trace is None:
            from repro.population.traces import StaticTrace

            trace = StaticTrace()
        self.trace = trace
        trace.bind(self)
        # post-bind snapshots: the columns a trace restores on calm rounds
        self.base_connectivity = self.connectivity.copy()
        self.base_responsiveness = self.responsiveness.copy()
        self.base_completeness = self.completeness.copy()

    # -- round state machine -----------------------------------------------------
    def advance(self, round_idx: int) -> None:
        """Advance the state columns to ``round_idx`` (idempotent per round).

        Revives expired drops, lets the device trace rewrite the columns,
        then settles every non-working, non-dropped device into
        idle/offline per the refreshed ``available`` mask.
        """
        if round_idx == self._round:
            return
        self._round = round_idx
        revive = (self.state == DROPPED) & (round_idx > self._drop_until)
        self.state[revive] = IDLE
        self.trace.apply(self, round_idx)
        settled = (self.state != WORKING) & (self.state != DROPPED)
        self.state[settled] = np.where(
            self.available[settled], IDLE, OFFLINE
        ).astype(np.int8)

    def online(self, round_idx: int) -> np.ndarray:
        """Boolean mask of *selectable* clients: idle at ``round_idx``."""
        self.advance(round_idx)
        return self.state == IDLE

    def online_clients(self, round_idx: int) -> np.ndarray:
        """Ids of selectable clients at ``round_idx``."""
        return np.flatnonzero(self.online(round_idx))

    def begin_work(self, client_ids: np.ndarray) -> None:
        """Mark contacted candidates as working — out of the idle pool."""
        if len(client_ids):
            self.state[np.asarray(client_ids, dtype=np.int64)] = WORKING

    def finish_round(
        self, round_idx: int, dropped_ids: Optional[np.ndarray] = None
    ) -> None:
        """Close the round: working devices return to idle, mid-round
        failures enter ``DROPPED`` until ``round_idx + dropped_cooldown``
        has passed."""
        self.state[self.state == WORKING] = IDLE
        if dropped_ids is not None and len(dropped_ids):
            ids = np.asarray(dropped_ids, dtype=np.int64)
            self.state[ids] = DROPPED
            self._drop_until[ids] = round_idx + self.dropped_cooldown

    # -- AvailabilityTrace protocol ----------------------------------------------
    def survives_round(self, client_ids: np.ndarray) -> np.ndarray:
        """Mid-round survival draw from the per-client connectivity column."""
        ids = np.asarray(client_ids, dtype=np.int64)
        conn = self.connectivity[ids]
        if np.all(conn >= 1.0):
            return np.ones(len(ids), dtype=bool)
        return self._rng.random(len(ids)) < conn

    def burst_survives(
        self, client_ids: np.ndarray, extra_prob: float
    ) -> np.ndarray:
        """Extra dropout draw (legacy context-knob compatibility)."""
        if extra_prob <= 0.0:
            return np.ones(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) >= extra_prob

    def straggler_mask(
        self, client_ids: np.ndarray, fraction: float
    ) -> np.ndarray:
        """Storm-hit draw (legacy context-knob compatibility)."""
        if fraction <= 0.0:
            return np.zeros(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) < fraction

    # -- column reads -------------------------------------------------------------
    def responsiveness_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Compute-time multipliers for ``client_ids``."""
        return self.responsiveness[np.asarray(client_ids, dtype=np.int64)]

    def completeness_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Work-fraction column for ``client_ids``."""
        return self.completeness[np.asarray(client_ids, dtype=np.int64)]

    def local_steps_for(
        self, client_ids: np.ndarray, local_steps: int
    ) -> np.ndarray:
        """Realized local steps: ``ceil(completeness · E)``, at least 1."""
        frac = self.completeness_of(client_ids)
        steps = np.ceil(frac * local_steps)
        return np.maximum(1, steps).astype(np.int64)

    def state_counts(self) -> Dict[str, int]:
        """``{"idle": …, "working": …, "offline": …, "dropped": …}``."""
        counts = np.bincount(self.state, minlength=4)
        return {
            "idle": int(counts[IDLE]),
            "working": int(counts[WORKING]),
            "offline": int(counts[OFFLINE]),
            "dropped": int(counts[DROPPED]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceStatePopulation(n={self.num_clients}, "
            f"trace={type(self.trace).__name__}, {self.state_counts()})"
        )
