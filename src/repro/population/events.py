"""Round-indexed transition-event queue behind the event-driven population.

The sweep-mode population pays O(N) per round: every ``advance`` lets the
trace rewrite full columns and then re-settles all N devices.  The
event-driven mode inverts that: at bind time the trace converts its
dynamics into *transition events* on this queue, and ``advance`` only
touches the clients those events name.  Two event classes cover every
trace in the repo:

scheduled events (``schedule``)
    Absolute state transitions pinned to a round — duty-cycle window
    flips, diurnal window edges, drop-cooldown revivals.  When ``advance``
    jumps several rounds at once, *all* events up to the target round
    drain in ``(round, seq)`` order, so the population lands in the same
    state the round-by-round sweep would have produced.

recurring actions (``add_recurring``)
    Per-round behavior that consumes RNG or otherwise depends on the
    queried round — device-class Bernoulli redraws, diurnal jitter,
    churn-storm bursts.  These fire exactly once per ``advance``, at the
    target round only, mirroring the sweep contract that ``apply`` runs
    once per *queried* round (never for skipped rounds).

Actions are callables ``action(population, fire_round)`` where
``fire_round`` is the round the event was scheduled for (scheduled
events) or the advance target (recurring actions).  Self-rescheduling
actions re-arm relative to ``fire_round``, which keeps periodic chains
aligned across round jumps.

>>> q = PopulationEventQueue()
>>> fired = []
>>> q.schedule(3, lambda pop, r: fired.append(("b", r)))
>>> q.schedule(1, lambda pop, r: fired.append(("a", r)))
>>> q.add_recurring(lambda pop, r: fired.append(("tick", r)))
>>> for fire_round, action in q.pop_due(4):
...     action(None, fire_round)
>>> for action in q.recurring:
...     action(None, 4)
>>> fired
[('a', 1), ('b', 3), ('tick', 4)]
>>> len(q)
0
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Tuple

__all__ = ["PopulationEventQueue"]

#: an event action: ``action(population, fire_round)``
Action = Callable[[object, int], None]


class PopulationEventQueue:
    """Min-heap of ``(round, seq, action)`` plus a recurring-action list.

    ``seq`` is a monotone tie-break so same-round events fire in the
    order they were scheduled — the same FIFO discipline as
    :class:`~repro.engine.clock.SimClock`.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Action]] = []
        self._seq = 0
        self._recurring: List[Action] = []

    def schedule(self, round_idx: int, action: Action) -> None:
        """Arm ``action`` to fire when ``advance`` reaches ``round_idx``."""
        heapq.heappush(self._heap, (int(round_idx), self._seq, action))
        self._seq += 1

    def add_recurring(self, action: Action) -> None:
        """Register a per-round action (fires once per ``advance``)."""
        self._recurring.append(action)

    @property
    def recurring(self) -> Tuple[Action, ...]:
        """The registered per-round actions, in registration order."""
        return tuple(self._recurring)

    def pop_due(self, round_idx: int) -> Iterator[Tuple[int, Action]]:
        """Drain ``(fire_round, action)`` pairs due at or before
        ``round_idx``, in ``(round, seq)`` order.

        Actions may ``schedule`` follow-up events while draining (the
        periodic-chain pattern); follow-ups due within the same drain
        fire in the same pass.
        """
        while self._heap and self._heap[0][0] <= round_idx:
            fire_round, _, action = heapq.heappop(self._heap)
            yield fire_round, action

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self._heap[0][0] if self._heap else None
        return (
            f"PopulationEventQueue(pending={len(self._heap)}, "
            f"recurring={len(self._recurring)}, next_round={nxt})"
        )
