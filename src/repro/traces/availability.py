"""Client availability traces (FedScale stand-in).

FedScale replays real device check-in traces: devices cycle between online
and offline and can drop out mid-round.  We reproduce both effects with a
per-client duty cycle (random period, phase, and on-fraction) plus an
independent mid-round dropout probability — together these create exactly
the straggler/offline pressure that over-commitment (§5.6) exists to absorb.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AvailabilityTrace", "always_available"]


class AvailabilityTrace:
    """Duty-cycle availability plus mid-round dropout.

    Parameters
    ----------
    num_clients:
        Federation size.
    rng:
        Source of the per-client cycle parameters and dropout draws.
    mean_on_fraction:
        Average fraction of rounds each client is online.
    min_period, max_period:
        Range of duty-cycle lengths, in rounds.
    dropout_prob:
        Probability that an online, selected client fails mid-round
        (its update never arrives).
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        mean_on_fraction: float = 0.8,
        min_period: int = 20,
        max_period: int = 200,
        dropout_prob: float = 0.1,
    ):
        if not 0.0 < mean_on_fraction <= 1.0:
            raise ValueError("mean_on_fraction must be in (0, 1]")
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        self.num_clients = num_clients
        self.dropout_prob = dropout_prob
        self._rng = rng
        self._period = rng.integers(min_period, max_period + 1, size=num_clients)
        self._phase = rng.integers(0, self._period)
        # Beta with the requested mean, moderate dispersion
        a = 4.0 * mean_on_fraction
        b = 4.0 * (1.0 - mean_on_fraction) + 1e-9
        self._on_fraction = rng.beta(a, b, size=num_clients)

    def online(self, round_idx: int) -> np.ndarray:
        """Boolean mask of clients online at ``round_idx``."""
        pos = (round_idx + self._phase) % self._period
        return pos < self._on_fraction * self._period

    def online_clients(self, round_idx: int) -> np.ndarray:
        """Ids of clients online at ``round_idx``."""
        return np.flatnonzero(self.online(round_idx))

    def survives_round(self, client_ids: np.ndarray) -> np.ndarray:
        """Draw mid-round dropout: True where the client's update arrives."""
        if self.dropout_prob == 0.0:
            return np.ones(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) >= self.dropout_prob

    def burst_survives(
        self, client_ids: np.ndarray, extra_prob: float
    ) -> np.ndarray:
        """Extra dropout draw for injected failure bursts.

        Independent of :meth:`survives_round`: the failure-injection
        scheduler ANDs the two masks, so a burst stacks on top of the
        trace's baseline dropout.
        """
        if extra_prob <= 0.0:
            return np.ones(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) >= extra_prob

    def straggler_mask(
        self, client_ids: np.ndarray, fraction: float
    ) -> np.ndarray:
        """Draw which of ``client_ids`` are hit by a straggler storm."""
        if fraction <= 0.0:
            return np.zeros(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) < fraction


def always_available(num_clients: int) -> AvailabilityTrace:
    """A trace with every client always online and no dropout (for tests)."""
    trace = AvailabilityTrace(
        num_clients,
        np.random.default_rng(0),
        mean_on_fraction=1.0,
        dropout_prob=0.0,
    )
    trace._on_fraction = np.ones(num_clients)
    return trace
