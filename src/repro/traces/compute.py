"""Heterogeneous client compute-speed model (FedScale stand-in).

Each client gets a persistent speed factor drawn from a log-normal — slow
phones coexist with fast ones — and the time for a round of local training
is ``E · seconds_per_step · speed_factor``.  The per-step base cost scales
with model size so that bigger models cost more compute, mirroring how the
paper's per-round computation time differs between ShuffleNet and
ResNet-34.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ComputeTrace"]


class ComputeTrace:
    """Per-client local-training time model.

    Parameters
    ----------
    num_clients:
        Federation size.
    rng:
        Source of the per-client speed factors.
    base_step_seconds:
        Seconds per local SGD step on a median device for a reference-size
        model.
    sigma:
        Log-normal dispersion of the speed factors (0 → homogeneous).
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        base_step_seconds: float = 0.25,
        sigma: float = 0.5,
    ):
        if base_step_seconds <= 0:
            raise ValueError("base_step_seconds must be positive")
        self.num_clients = num_clients
        self.base_step_seconds = base_step_seconds
        self.speed_factor = np.exp(sigma * rng.standard_normal(num_clients))

    def round_seconds(
        self, client_id: int, local_steps: int, model_scale: float = 1.0
    ) -> float:
        """Local-training seconds for one client in one round."""
        return (
            local_steps
            * self.base_step_seconds
            * model_scale
            * float(self.speed_factor[client_id])
        )

    def round_seconds_many(
        self, client_ids: np.ndarray, local_steps: int, model_scale: float = 1.0
    ) -> np.ndarray:
        """Vectorized version of :meth:`round_seconds`."""
        return (
            local_steps
            * self.base_step_seconds
            * model_scale
            * self.speed_factor[np.asarray(client_ids)]
        )

    @staticmethod
    def model_scale(num_params: int, reference_params: int = 20_000) -> float:
        """Compute-cost multiplier for a model of ``num_params`` parameters."""
        if num_params <= 0:
            raise ValueError("num_params must be positive")
        return num_params / reference_params
