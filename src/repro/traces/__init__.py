"""Client behaviour traces: availability duty cycles and compute speeds."""

from repro.traces.availability import AvailabilityTrace, always_available
from repro.traces.compute import ComputeTrace
from repro.traces.diurnal import DiurnalAvailabilityTrace

__all__ = [
    "AvailabilityTrace",
    "always_available",
    "ComputeTrace",
    "DiurnalAvailabilityTrace",
]
