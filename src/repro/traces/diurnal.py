"""Diurnal availability (extension beyond the paper's duty-cycle model).

FedScale's real check-in traces show strong day/night structure: devices
are idle-and-charging (hence eligible) during their local night.  This
trace models each client with a home timezone and an eligibility window,
plus the same mid-round dropout as the base trace.  It is a drop-in
replacement for :class:`~repro.traces.availability.AvailabilityTrace` and
is useful for studying how sticky sampling interacts with a client pool
that rotates with the clock — a question the paper leaves open.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiurnalAvailabilityTrace"]


class DiurnalAvailabilityTrace:
    """Availability driven by a simulated time-of-day.

    Parameters
    ----------
    num_clients:
        Federation size.
    rng:
        Source of per-client timezones/windows and dropout draws.
    rounds_per_day:
        How many FL rounds make up one simulated day.
    window_hours:
        Length of each client's daily eligibility window (out of 24).
    jitter_prob:
        Probability a client deviates from its window in a given round
        (device plugged in at an odd hour, or busy during its window).
    dropout_prob:
        Mid-round dropout probability (same semantics as the base trace).
    """

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        rounds_per_day: int = 48,
        window_hours: float = 8.0,
        jitter_prob: float = 0.05,
        dropout_prob: float = 0.1,
    ):
        if rounds_per_day <= 0:
            raise ValueError("rounds_per_day must be positive")
        if not 0.0 < window_hours <= 24.0:
            raise ValueError("window_hours must be in (0, 24]")
        if not 0.0 <= jitter_prob < 1.0 or not 0.0 <= dropout_prob < 1.0:
            raise ValueError("probabilities must be in [0, 1)")
        self.num_clients = num_clients
        self.rounds_per_day = rounds_per_day
        self.window_fraction = window_hours / 24.0
        self.jitter_prob = jitter_prob
        self.dropout_prob = dropout_prob
        self._rng = rng
        # window start as a fraction of the day, clustered into a few
        # timezone-like groups rather than uniform
        num_zones = 6
        zone = rng.integers(0, num_zones, size=num_clients)
        self._window_start = (
            zone / num_zones + rng.normal(0, 0.02, size=num_clients)
        ) % 1.0

    def _day_position(self, round_idx: int) -> float:
        return (round_idx % self.rounds_per_day) / self.rounds_per_day

    def online(self, round_idx: int) -> np.ndarray:
        """Boolean mask of clients eligible at ``round_idx``."""
        pos = self._day_position(round_idx)
        offset = (pos - self._window_start) % 1.0
        in_window = offset < self.window_fraction
        if self.jitter_prob > 0.0:
            # deterministic per (round, client) jitter via a counter-based draw
            jitter_rng = np.random.default_rng(
                np.uint64(0x9E3779B9) * np.uint64(round_idx + 1)
            )
            flip = jitter_rng.random(self.num_clients) < self.jitter_prob
            in_window = in_window ^ flip
        return in_window

    def online_clients(self, round_idx: int) -> np.ndarray:
        return np.flatnonzero(self.online(round_idx))

    def survives_round(self, client_ids: np.ndarray) -> np.ndarray:
        if self.dropout_prob == 0.0:
            return np.ones(len(client_ids), dtype=bool)
        return self._rng.random(len(client_ids)) >= self.dropout_prob

    def online_fraction_over_day(self) -> np.ndarray:
        """Mean availability per round position (diagnostics/plots)."""
        return np.array(
            [self.online(t).mean() for t in range(self.rounds_per_day)]
        )
