"""Paper default hyperparameters (§5.1), keyed by model architecture."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GlueFLPreset", "PAPER_PRESETS", "preset_for_model"]


@dataclass(frozen=True)
class GlueFLPreset:
    """Mask ratios and schedule from §5.1.

    ``q``/``q_shr`` are total/shared mask ratios; ``regen_interval`` is the
    shared-mask regeneration period; sticky parameters are expressed
    relative to K (``S = s_factor·K``, ``C = c_factor·K``).
    """

    q: float
    q_shr: float
    regen_interval: int = 10
    s_factor: int = 4
    c_factor: float = 0.8
    overcommit: float = 1.3

    def group_size(self, k: int) -> int:
        return self.s_factor * k

    def sticky_count(self, k: int) -> int:
        return max(1, int(round(self.c_factor * k)))


#: §5.1: q = 20% for ShuffleNet (q_shr = 16%); q = 30% for MobileNet and
#: ResNet-34 (q_shr = 24%); S = 4K, C = 4K/5, I = 10, OC = 1.3 everywhere.
PAPER_PRESETS: Dict[str, GlueFLPreset] = {
    "shufflenet": GlueFLPreset(q=0.20, q_shr=0.16),
    "mobilenet": GlueFLPreset(q=0.30, q_shr=0.24),
    "resnet": GlueFLPreset(q=0.30, q_shr=0.24),
    # CPU-scale stand-in models reuse the ShuffleNet ratios
    "mlp": GlueFLPreset(q=0.20, q_shr=0.16),
    "cnn": GlueFLPreset(q=0.20, q_shr=0.16),
}


def preset_for_model(model_name: str) -> GlueFLPreset:
    """Paper hyperparameters for a model architecture."""
    try:
        return PAPER_PRESETS[model_name]
    except KeyError:
        raise KeyError(
            f"no preset for model {model_name!r}; known: "
            f"{sorted(PAPER_PRESETS)}"
        ) from None
