"""GlueFL assembled: sticky sampling + mask shifting + REC, in one call.

The paper's contribution is the *combination* of the pieces in
:mod:`repro.fl.samplers` (Algorithm 2) and
:mod:`repro.compression.gluefl_mask` (Algorithm 3).  This module packages
them with the paper's default hyperparameters so that a user can write::

    strategy, sampler = make_gluefl(num_to_sample=30)
    config = RunConfig(dataset=..., model_name="shufflenet",
                       strategy=strategy, sampler=sampler, rounds=500)
    result = run_training(config)
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.compression.error_comp import ErrorCompMode
from repro.compression.fedavg import FedAvgStrategy
from repro.compression.gluefl_mask import GlueFLMaskStrategy
from repro.fl.samplers import StickySampler

__all__ = ["make_gluefl", "make_sticky_fedavg"]


def make_gluefl(
    num_to_sample: int,
    *,
    group_size: Optional[int] = None,
    sticky_count: Optional[int] = None,
    q: float = 0.2,
    q_shr: float = 0.16,
    regen_interval: Optional[int] = 10,
    error_comp: ErrorCompMode = ErrorCompMode.REC,
    oc_sticky_share: Optional[float] = None,
) -> Tuple[GlueFLMaskStrategy, StickySampler]:
    """Build the GlueFL strategy + sampler pair with paper defaults.

    Parameters
    ----------
    num_to_sample:
        K — clients aggregated per round.
    group_size:
        S — sticky-group size; defaults to the paper's ``4K`` (§5.1).
    sticky_count:
        C — sticky participants per round; defaults to ``4K/5``.
    q, q_shr:
        Total and shared mask ratios (§5.1: 20%/16% for ShuffleNet,
        30%/24% for MobileNet and ResNet-34).
    regen_interval:
        Shared-mask regeneration period I (§3.3; ``None`` = never).
    error_comp:
        Error-compensation mode (REC is the paper's default).
    oc_sticky_share:
        Over-commitment split between sticky/non-sticky pools (§5.6);
        ``None`` uses the default ``C/K`` split.
    """
    if group_size is None:
        group_size = 4 * num_to_sample
    if sticky_count is None:
        sticky_count = (4 * num_to_sample) // 5
    strategy = GlueFLMaskStrategy(
        q=q,
        q_shr=q_shr,
        regen_interval=regen_interval,
        error_comp=error_comp,
    )
    sampler = StickySampler(
        num_to_sample=num_to_sample,
        group_size=group_size,
        sticky_count=sticky_count,
        oc_sticky_share=oc_sticky_share,
    )
    return strategy, sampler


def make_sticky_fedavg(
    num_to_sample: int,
    *,
    group_size: Optional[int] = None,
    sticky_count: Optional[int] = None,
    oc_sticky_share: Optional[float] = None,
) -> Tuple[FedAvgStrategy, StickySampler]:
    """Algorithm 2 alone: sticky sampling with dense (unmasked) updates.

    This is exactly the configuration Theorem 2 analyzes — "GlueFL without
    masking" (§4).  Useful for isolating the sampling mechanism's effect
    (and its variance cost) from the compression mechanism's.
    """
    if group_size is None:
        group_size = 4 * num_to_sample
    if sticky_count is None:
        sticky_count = (4 * num_to_sample) // 5
    sampler = StickySampler(
        num_to_sample=num_to_sample,
        group_size=group_size,
        sticky_count=sticky_count,
        oc_sticky_share=oc_sticky_share,
    )
    return FedAvgStrategy(), sampler
