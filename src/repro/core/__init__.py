"""The paper's contribution, packaged: GlueFL factory + paper presets."""

from repro.core.gluefl import make_gluefl, make_sticky_fedavg
from repro.core.presets import PAPER_PRESETS, GlueFLPreset, preset_for_model

__all__ = [
    "make_gluefl",
    "make_sticky_fedavg",
    "PAPER_PRESETS",
    "GlueFLPreset",
    "preset_for_model",
]
