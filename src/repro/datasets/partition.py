"""Non-IID partitioners.

The paper partitions real datasets with FedScale's client-data mapping.  We
reproduce the *statistical* property that matters — heterogeneous label
distributions across clients — with the standard Dirichlet partitioner
(lower ``alpha`` → more skew) plus shard- and IID-partitioners for ablations.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["dirichlet_partition", "shard_partition", "iid_partition"]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Split sample indices across clients with Dirichlet(α) label skew.

    For each class ``c`` a proportion vector ``π_c ~ Dir(α·1)`` over clients
    is drawn and the class's samples are split accordingly.  ``alpha → ∞``
    recovers IID; ``alpha → 0`` gives near single-class clients.

    Returns a list of ``num_clients`` index arrays (possibly empty).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    labels = np.asarray(labels)
    per_client: List[List[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls in np.unique(labels):
        cls_idx = np.flatnonzero(labels == cls)
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        # split points from cumulative proportions
        cuts = (np.cumsum(proportions)[:-1] * len(cls_idx)).astype(int)
        for client_id, chunk in enumerate(np.split(cls_idx, cuts)):
            if len(chunk):
                per_client[client_id].append(chunk)
    out = []
    for chunks in per_client:
        if chunks:
            idx = np.concatenate(chunks)
            rng.shuffle(idx)
            out.append(idx)
        else:
            out.append(np.array([], dtype=np.int64))
    return out


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """McMahan-style shard partition: sort by label, deal out shards.

    Each client receives ``shards_per_client`` contiguous label-sorted
    shards, giving clients a small number of classes each.
    """
    labels = np.asarray(labels)
    n = len(labels)
    num_shards = num_clients * shards_per_client
    if num_shards > n:
        raise ValueError(
            f"{num_shards} shards requested but only {n} samples available"
        )
    order = np.argsort(labels, kind="stable")
    shards = np.array_split(order, num_shards)
    shard_ids = rng.permutation(num_shards)
    out = []
    for client_id in range(num_clients):
        mine = shard_ids[
            client_id * shards_per_client : (client_id + 1) * shards_per_client
        ]
        idx = np.concatenate([shards[s] for s in mine])
        rng.shuffle(idx)
        out.append(idx)
    return out


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Uniform random equal-size split (the IID control)."""
    order = rng.permutation(num_samples)
    return [np.sort(chunk) for chunk in np.array_split(order, num_clients)]
