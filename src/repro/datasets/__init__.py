"""Synthetic non-IID federated datasets (FEMNIST/OpenImage/Speech stand-ins)."""

from repro.datasets.base import ClientDataset, FederatedDataset
from repro.datasets.partition import (
    dirichlet_partition,
    iid_partition,
    shard_partition,
)
from repro.datasets.filters import FEDSCALE_MIN_SAMPLES, filter_min_samples
from repro.datasets.synthetic import (
    image_prototypes,
    sample_from_prototypes,
    spectrogram_prototypes,
    synthetic_federation,
)
from repro.datasets.lazy import LazyClientList, lazy_synthetic_federation
from repro.datasets.femnist import femnist_like
from repro.datasets.openimage import openimage_like
from repro.datasets.speech import speech_like
from repro.datasets.adapters import (
    federation_from_arrays,
    subset_federation,
    validate_federation,
)

__all__ = [
    "ClientDataset",
    "FederatedDataset",
    "dirichlet_partition",
    "shard_partition",
    "iid_partition",
    "filter_min_samples",
    "FEDSCALE_MIN_SAMPLES",
    "synthetic_federation",
    "image_prototypes",
    "spectrogram_prototypes",
    "sample_from_prototypes",
    "LazyClientList",
    "lazy_synthetic_federation",
    "femnist_like",
    "openimage_like",
    "speech_like",
    "federation_from_arrays",
    "validate_federation",
    "subset_federation",
]
