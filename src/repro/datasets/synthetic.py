"""Synthetic class-conditional data generators.

These stand in for FEMNIST / OpenImage / Google Speech (see DESIGN.md §1).
Each class gets a low-frequency spatial prototype (images) or a sparse
time-frequency pattern (spectrograms); samples are noisy scaled copies, so
a convolutional model genuinely benefits from its inductive bias while a
linear model still learns — i.e. accuracy climbs over FL rounds, which is
all the bandwidth experiments require of the data.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.base import ClientDataset, FederatedDataset
from repro.datasets.filters import filter_min_samples
from repro.datasets.partition import dirichlet_partition

__all__ = [
    "image_prototypes",
    "spectrogram_prototypes",
    "sample_from_prototypes",
    "synthetic_federation",
]


def image_prototypes(
    num_classes: int,
    in_channels: int,
    image_size: int,
    rng: np.random.Generator,
    coarse: int = 4,
) -> np.ndarray:
    """Low-frequency per-class image prototypes ``(C, ch, H, W)``.

    A coarse random grid is upsampled with nearest-neighbour kron expansion,
    producing blocky large-scale structure that 3×3 convolutions can exploit.
    """
    if image_size % coarse:
        coarse = 2 if image_size % 2 == 0 else 1
    block = image_size // coarse
    grids = rng.normal(size=(num_classes, in_channels, coarse, coarse))
    protos = np.kron(grids, np.ones((1, 1, block, block)))
    # unit-power prototypes so `noise` has a consistent meaning
    power = np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / np.maximum(power, 1e-12)


def spectrogram_prototypes(
    num_classes: int,
    in_channels: int,
    image_size: int,
    rng: np.random.Generator,
    tones_per_class: int = 3,
) -> np.ndarray:
    """Per-class time-frequency prototypes ``(C, ch, F, T)``.

    Each class is a sum of a few horizontal "tone tracks" with random
    frequency rows, onset times, and durations — a cartoon of keyword
    spectrograms (the Google Speech stand-in).
    """
    f_bins = t_bins = image_size
    protos = np.zeros((num_classes, in_channels, f_bins, t_bins))
    t = np.arange(t_bins)
    for cls in range(num_classes):
        for _ in range(tones_per_class):
            row = int(rng.integers(0, f_bins))
            onset = int(rng.integers(0, t_bins // 2))
            duration = int(rng.integers(t_bins // 4, t_bins))
            amp = float(rng.uniform(0.5, 1.5))
            envelope = np.exp(-0.5 * ((t - onset - duration / 2) / (duration / 3)) ** 2)
            protos[cls, :, row, :] += amp * envelope
            if row + 1 < f_bins:  # slight vertical smear, like a real STFT
                protos[cls, :, row + 1, :] += 0.5 * amp * envelope
    power = np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))
    return protos / np.maximum(power, 1e-12)


def sample_from_prototypes(
    prototypes: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    noise: float = 1.0,
    amplitude_jitter: float = 0.25,
) -> np.ndarray:
    """Draw ``x = a·proto[y] + noise·ε`` with per-sample amplitude jitter."""
    n = len(labels)
    amps = 1.0 + amplitude_jitter * rng.normal(size=(n, 1, 1, 1))
    x = amps * prototypes[labels]
    x += noise * rng.normal(size=x.shape)
    return x


def synthetic_federation(
    *,
    name: str,
    num_clients: int,
    num_classes: int,
    in_channels: int,
    image_size: int,
    samples_per_client: int,
    alpha: float,
    noise: float,
    rng: np.random.Generator,
    prototype_kind: str = "image",
    test_samples: int = 512,
    min_samples: Optional[int] = None,
) -> FederatedDataset:
    """Build a non-IID synthetic federation.

    Parameters
    ----------
    samples_per_client:
        Mean shard size; actual sizes vary with the Dirichlet split.
    alpha:
        Dirichlet concentration (lower → more label skew).
    noise:
        Additive Gaussian noise level relative to unit-power prototypes.
    prototype_kind:
        ``"image"`` or ``"spectrogram"``.
    min_samples:
        If given, drop clients below this shard size (FedScale rule).
    """
    if prototype_kind == "image":
        protos = image_prototypes(num_classes, in_channels, image_size, rng)
    elif prototype_kind == "spectrogram":
        protos = spectrogram_prototypes(num_classes, in_channels, image_size, rng)
    else:
        raise ValueError(f"unknown prototype_kind {prototype_kind!r}")

    total = num_clients * samples_per_client
    labels = rng.integers(0, num_classes, size=total)
    x = sample_from_prototypes(protos, labels, rng, noise=noise)

    parts = dirichlet_partition(labels, num_clients, alpha, rng)
    clients: List[ClientDataset] = []
    for cid, idx in enumerate(parts):
        clients.append(ClientDataset(x=x[idx], y=labels[idx], client_id=cid))

    test_y = rng.integers(0, num_classes, size=test_samples)
    test_x = sample_from_prototypes(protos, test_y, rng, noise=noise)

    dataset = FederatedDataset(
        clients=clients,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
        in_channels=in_channels,
        image_size=image_size,
        name=name,
    )
    if min_samples is not None:
        dataset = filter_min_samples(dataset, min_samples)
    return dataset
