"""Client filtering, mirroring FedScale preprocessing.

The paper (§5.1) removes clients with fewer than 22 samples — FedScale's
default — before training.  We apply the same rule to the synthetic
federations.
"""

from __future__ import annotations

from typing import List

from repro.datasets.base import ClientDataset, FederatedDataset

#: FedScale's default minimum local-shard size (paper §5.1).
FEDSCALE_MIN_SAMPLES = 22

__all__ = ["filter_min_samples", "FEDSCALE_MIN_SAMPLES"]


def filter_min_samples(
    dataset: FederatedDataset, min_samples: int = FEDSCALE_MIN_SAMPLES
) -> FederatedDataset:
    """Drop clients whose shard is smaller than ``min_samples``.

    Client ids are re-assigned to be contiguous after filtering, matching
    how the simulator indexes clients ``0..N-1``.
    """
    kept: List[ClientDataset] = []
    for client in dataset.clients:
        if len(client) >= min_samples:
            kept.append(
                ClientDataset(x=client.x, y=client.y, client_id=len(kept))
            )
    if not kept:
        raise ValueError(
            f"min_samples={min_samples} filtered out every client "
            f"(largest shard: {max((len(c) for c in dataset.clients), default=0)})"
        )
    return FederatedDataset(
        clients=kept,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
        num_classes=dataset.num_classes,
        in_channels=dataset.in_channels,
        image_size=dataset.image_size,
        name=dataset.name,
    )
