"""OpenImage-like federation (larger-scale color image classification).

The paper's OpenImage has 10,625 clients and 1.3M color images; our stand-in
keeps 3-channel inputs and a larger client count than the FEMNIST stand-in,
scaled to CPU budgets by default.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.datasets.synthetic import synthetic_federation

__all__ = ["openimage_like"]


def openimage_like(
    num_clients: int = 600,
    num_classes: int = 10,
    image_size: int = 32,
    samples_per_client: int = 40,
    alpha: float = 0.3,
    noise: float = 1.2,
    min_samples: int = 10,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> FederatedDataset:
    """Build the OpenImage stand-in federation (3-channel images)."""
    gen = rng if rng is not None else np.random.default_rng(seed)
    return synthetic_federation(
        name="openimage",
        num_clients=num_clients,
        num_classes=num_classes,
        in_channels=3,
        image_size=image_size,
        samples_per_client=samples_per_client,
        alpha=alpha,
        noise=noise,
        rng=gen,
        prototype_kind="image",
        min_samples=min_samples,
    )
