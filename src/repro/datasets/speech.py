"""Google-Speech-like federation (keyword-spotting spectrograms).

The paper's Google Speech has 2,066 clients and 105K speech samples,
classified with ResNet-34 over spectrogram-style inputs.  The stand-in
generates sparse time-frequency "tone track" prototypes per keyword class
(see :func:`repro.datasets.synthetic.spectrogram_prototypes`).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.datasets.synthetic import synthetic_federation

__all__ = ["speech_like"]


def speech_like(
    num_clients: int = 200,
    num_classes: int = 10,
    image_size: int = 32,
    samples_per_client: int = 50,
    alpha: float = 0.5,
    noise: float = 0.8,
    min_samples: int = 10,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> FederatedDataset:
    """Build the Google Speech stand-in federation (1-channel spectrograms)."""
    gen = rng if rng is not None else np.random.default_rng(seed)
    return synthetic_federation(
        name="google_speech",
        num_clients=num_clients,
        num_classes=num_classes,
        in_channels=1,
        image_size=image_size,
        samples_per_client=samples_per_client,
        alpha=alpha,
        noise=noise,
        rng=gen,
        prototype_kind="spectrogram",
        min_samples=min_samples,
    )
