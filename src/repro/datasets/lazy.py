"""Lazy client materialization for very large federations.

A 100k-client federation of eagerly-built shards costs gigabytes before a
single round runs — yet each round touches only the sampled cohort (tens
of clients).  :class:`LazyClientList` is a drop-in ``Sequence`` for
``FederatedDataset.clients``: shards are built on first access by a
deterministic per-client factory and kept in a small LRU cache, so peak
memory is bounded by ``cache_size`` shards regardless of federation size.

The backend seam makes this transparent: every execution backend indexes
``clients[task.client_id]`` per task, and the fork-based process backend
inherits the list by reference, so workers share the parent's cache
discipline.  Determinism holds because each shard is produced by
``np.random.default_rng([seed, client_id])`` — independent of access
order and of what was evicted in between.

>>> import numpy as np
>>> calls = []
>>> def factory(cid):
...     calls.append(cid)
...     return ClientDataset(
...         x=np.zeros((2, 1)), y=np.zeros(2, dtype=np.int64), client_id=cid
...     )
>>> shards = LazyClientList(5, factory, cache_size=2)
>>> _ = shards[0]; _ = shards[1]; _ = shards[0]  # hit: no rebuild
>>> calls
[0, 1]
>>> _ = shards[2]  # evicts 1 (least recently used)
>>> sorted(shards.cached_ids), sorted(shards.ever_materialized)
([0, 2], [0, 1, 2])
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.datasets.base import ClientDataset, FederatedDataset
from repro.datasets.synthetic import image_prototypes, sample_from_prototypes

__all__ = ["LazyClientList", "lazy_synthetic_federation"]


class LazyClientList(Sequence):
    """A ``Sequence[ClientDataset]`` that builds shards on demand.

    Parameters
    ----------
    num_clients:
        Federation size (``len`` of the virtual list).
    factory:
        ``factory(client_id) -> ClientDataset`` — must be deterministic in
        ``client_id`` so eviction and re-materialization are invisible.
    cache_size:
        Maximum number of shards held at once (LRU eviction).
    """

    def __init__(
        self,
        num_clients: int,
        factory: Callable[[int], ClientDataset],
        cache_size: int = 64,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.num_clients = num_clients
        self.factory = factory
        self.cache_size = cache_size
        self._cache: "OrderedDict[int, ClientDataset]" = OrderedDict()
        #: every client id materialized at least once — the memory-bound
        #: assertion in the 100k smoke test reads this
        self.ever_materialized: set = set()

    def __len__(self) -> int:
        return self.num_clients

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(self.num_clients))]
        cid = int(idx)
        if cid < 0:
            cid += self.num_clients
        if not 0 <= cid < self.num_clients:
            raise IndexError(f"client {idx} out of range [0, {self.num_clients})")
        shard = self._cache.get(cid)
        if shard is None:
            shard = self.factory(cid)
            self.ever_materialized.add(cid)
            self._cache[cid] = shard
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(cid)
        return shard

    def evict(self, client_ids) -> int:
        """Drop the given clients' shards from the cache now.

        Population-aware memory management: when a client leaves the
        active cohort for a long stretch (dropped with a cooldown, or its
        server-side lazy state was LRU-evicted), its shard can be
        released immediately instead of waiting to age out of the LRU.
        Re-access simply re-materializes — the factory is deterministic —
        so eviction is always safe.  Returns how many shards were
        resident.

        >>> shards = LazyClientList(
        ...     4, lambda cid: ClientDataset(
        ...         x=np.zeros((1, 1)), y=np.zeros(1, dtype=np.int64),
        ...         client_id=cid))
        >>> _ = shards[0]; _ = shards[1]
        >>> shards.evict([1, 3])
        1
        >>> shards.cached_ids
        [0]
        """
        dropped = 0
        for cid in client_ids:
            if self._cache.pop(int(cid), None) is not None:
                dropped += 1
        return dropped

    @property
    def cached_ids(self):
        """Client ids currently resident (≤ ``cache_size``)."""
        return list(self._cache)


def lazy_synthetic_federation(
    *,
    name: str = "lazy-synthetic",
    num_clients: int,
    num_classes: int = 4,
    in_channels: int = 1,
    image_size: int = 8,
    samples_per_client: int = 8,
    alpha: float = 0.5,
    noise: float = 1.0,
    seed: int = 0,
    cache_size: int = 64,
    test_samples: int = 128,
) -> FederatedDataset:
    """A synthetic federation whose shards materialize lazily.

    Only the class prototypes and the central test set are built eagerly;
    each client's non-IID shard (Dirichlet-``alpha`` label preferences,
    exactly ``samples_per_client`` samples) comes from
    ``np.random.default_rng([seed, client_id])`` on first access.  Equal
    shard sizes let the importance weights ``p_i = 1/n`` be pre-set, so
    ``weights()`` never touches a shard.
    """
    root = np.random.default_rng(seed)
    protos = image_prototypes(num_classes, in_channels, image_size, root)
    test_y = root.integers(0, num_classes, size=test_samples)
    test_x = sample_from_prototypes(protos, test_y, root, noise=noise)

    def factory(cid: int) -> ClientDataset:
        rng = np.random.default_rng([seed, cid])
        prefs = rng.dirichlet(np.full(num_classes, alpha))
        labels = rng.choice(num_classes, size=samples_per_client, p=prefs)
        x = sample_from_prototypes(protos, labels, rng, noise=noise)
        return ClientDataset(x=x, y=labels, client_id=cid)

    return FederatedDataset(
        clients=LazyClientList(num_clients, factory, cache_size=cache_size),
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
        in_channels=in_channels,
        image_size=image_size,
        name=name,
        _weights=np.full(num_clients, 1.0 / num_clients),
    )
