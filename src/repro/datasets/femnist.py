"""FEMNIST-like federation (handwriting-style image classification).

The paper's FEMNIST has 2,800 clients (after FedScale's ≥22-sample filter),
62 classes, 28×28 grayscale images.  The synthetic stand-in keeps the
geometry (1×28×28) and non-IID writer-style skew, with client count and
class count scaled down by default for CPU runs; pass ``num_clients=2800,
num_classes=62`` for the paper-faithful configuration.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.datasets.synthetic import synthetic_federation

__all__ = ["femnist_like"]


def femnist_like(
    num_clients: int = 300,
    num_classes: int = 10,
    image_size: int = 28,
    samples_per_client: int = 48,
    alpha: float = 0.5,
    noise: float = 1.0,
    min_samples: int = 10,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> FederatedDataset:
    """Build the FEMNIST stand-in federation (1-channel images)."""
    gen = rng if rng is not None else np.random.default_rng(seed)
    return synthetic_federation(
        name="femnist",
        num_clients=num_clients,
        num_classes=num_classes,
        in_channels=1,
        image_size=image_size,
        samples_per_client=samples_per_client,
        alpha=alpha,
        noise=noise,
        rng=gen,
        prototype_kind="image",
        min_samples=min_samples,
    )
