"""Federated dataset abstractions.

A :class:`FederatedDataset` is a list of per-client shards plus one held-out
central test set.  Client importance weights ``p_i`` default to the
sample-count proportions, matching the paper's §2.1 setup where
``sum_i p_i = 1`` and the global objective is the p-weighted average of
client losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["ClientDataset", "FederatedDataset"]


@dataclass
class ClientDataset:
    """One client's local shard.

    Attributes
    ----------
    x:
        Features, shape ``(n, C, H, W)`` (or ``(n, F)`` for flat data).
    y:
        Integer labels, shape ``(n,)``.
    client_id:
        Stable identifier within the federation.
    """

    x: np.ndarray
    y: np.ndarray
    client_id: int = -1

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"feature/label count mismatch: {len(self.x)} vs {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.y)

    def batches(
        self,
        batch_size: int,
        rng: np.random.Generator,
        num_batches: Optional[int] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield shuffled mini-batches, cycling through epochs as needed.

        Matches the FL local-update loop: the client draws ``num_batches``
        mini-batches (one per local SGD step ``e``); if the shard is smaller
        than ``num_batches * batch_size`` it reshuffles and continues —
        i.e. sampling ``ξ_i ~ D_i`` per step.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = len(self)
        if n == 0:
            raise ValueError(f"client {self.client_id} has no data")
        produced = 0
        target = num_batches if num_batches is not None else max(1, n // batch_size)
        while produced < target:
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                if produced >= target:
                    return
                sel = order[start : start + batch_size]
                yield self.x[sel], self.y[sel]
                produced += 1

    def label_histogram(self, num_classes: int) -> np.ndarray:
        """Per-class sample counts (used by non-IID-ness diagnostics)."""
        return np.bincount(self.y, minlength=num_classes).astype(np.int64)


@dataclass
class FederatedDataset:
    """A federation: client shards + central test set + geometry metadata."""

    clients: List[ClientDataset]
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    in_channels: int
    image_size: int
    name: str = "federated"
    _weights: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def weights(self) -> np.ndarray:
        """Client importance weights ``p_i`` (sample-proportional, sum to 1)."""
        if self._weights is None:
            counts = np.array([len(c) for c in self.clients], dtype=np.float64)
            total = counts.sum()
            if total <= 0:
                raise ValueError("federation has no data")
            self._weights = counts / total
        return self._weights

    def total_samples(self) -> int:
        return int(sum(len(c) for c in self.clients))

    def noniid_degree(self) -> float:
        """Mean total-variation distance between client and global label mix.

        0 = perfectly IID; → 1 as clients become single-class.  Used in tests
        to verify the Dirichlet partitioner actually skews labels.
        """
        global_hist = np.zeros(self.num_classes)
        client_hists = []
        for c in self.clients:
            h = c.label_histogram(self.num_classes).astype(np.float64)
            client_hists.append(h)
            global_hist += h
        global_p = global_hist / global_hist.sum()
        tvs = []
        for h in client_hists:
            if h.sum() == 0:
                continue
            tvs.append(0.5 * np.abs(h / h.sum() - global_p).sum())
        return float(np.mean(tvs))
