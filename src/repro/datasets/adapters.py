"""Bring-your-own-data adapters and federation sanity checks.

The synthetic generators cover the reproduction; downstream users will
want to wrap their *own* per-client arrays.  :func:`federation_from_arrays`
builds a :class:`~repro.datasets.base.FederatedDataset` from plain numpy
arrays, and :func:`validate_federation` checks the invariants the
simulator relies on (consistent shapes, label ranges, non-empty shards,
normalized weights) with actionable error messages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ClientDataset, FederatedDataset

__all__ = ["federation_from_arrays", "validate_federation", "subset_federation"]


def federation_from_arrays(
    client_data: Sequence[Tuple[np.ndarray, np.ndarray]],
    test_x: np.ndarray,
    test_y: np.ndarray,
    num_classes: Optional[int] = None,
    name: str = "custom",
) -> FederatedDataset:
    """Build a federation from ``[(x_0, y_0), (x_1, y_1), ...]`` shards.

    Features must be ``(n_i, C, H, W)`` with square images and identical
    ``(C, H, W)`` across clients and the test set.  Labels are integer
    class ids; ``num_classes`` defaults to ``max(label) + 1``.
    """
    if not client_data:
        raise ValueError("need at least one client shard")
    clients: List[ClientDataset] = []
    for cid, (x, y) in enumerate(client_data):
        clients.append(
            ClientDataset(
                x=np.asarray(x), y=np.asarray(y, dtype=np.int64), client_id=cid
            )
        )
    first = clients[0].x
    if first.ndim != 4:
        raise ValueError(
            f"features must be (n, C, H, W); client 0 has shape {first.shape}"
        )
    if num_classes is None:
        all_max = max(
            (int(c.y.max()) for c in clients if len(c)), default=-1
        )
        num_classes = max(all_max, int(np.max(test_y, initial=-1))) + 1
    dataset = FederatedDataset(
        clients=clients,
        test_x=np.asarray(test_x),
        test_y=np.asarray(test_y, dtype=np.int64),
        num_classes=num_classes,
        in_channels=first.shape[1],
        image_size=first.shape[2],
        name=name,
    )
    validate_federation(dataset)
    return dataset


def validate_federation(dataset: FederatedDataset) -> None:
    """Raise ``ValueError`` describing the first invariant violation found."""
    shape = (dataset.in_channels, dataset.image_size, dataset.image_size)
    for client in dataset.clients:
        if len(client) == 0:
            raise ValueError(f"client {client.client_id} has an empty shard")
        if client.x.ndim != 4 or client.x.shape[1:] != shape:
            raise ValueError(
                f"client {client.client_id} features {client.x.shape[1:]} "
                f"do not match federation geometry {shape}"
            )
        if client.y.min() < 0 or client.y.max() >= dataset.num_classes:
            raise ValueError(
                f"client {client.client_id} labels outside "
                f"[0, {dataset.num_classes})"
            )
        if not np.isfinite(client.x).all():
            raise ValueError(
                f"client {client.client_id} features contain NaN/inf"
            )
    if dataset.test_x.shape[1:] != shape:
        raise ValueError(
            f"test features {dataset.test_x.shape[1:]} do not match "
            f"federation geometry {shape}"
        )
    if len(dataset.test_x) != len(dataset.test_y):
        raise ValueError("test feature/label count mismatch")
    if len(dataset.test_y) and (
        dataset.test_y.min() < 0 or dataset.test_y.max() >= dataset.num_classes
    ):
        raise ValueError(f"test labels outside [0, {dataset.num_classes})")
    weights = dataset.weights()
    if not np.isclose(weights.sum(), 1.0):
        raise ValueError("client weights do not sum to 1")


def subset_federation(
    dataset: FederatedDataset,
    num_clients: int,
    rng: Optional[np.random.Generator] = None,
) -> FederatedDataset:
    """A federation over a random subset of clients (for quick experiments).

    Client ids are re-assigned contiguously; the test set is shared.
    """
    if not 0 < num_clients <= dataset.num_clients:
        raise ValueError(
            f"cannot take {num_clients} of {dataset.num_clients} clients"
        )
    gen = rng if rng is not None else np.random.default_rng(0)
    keep = np.sort(gen.choice(dataset.num_clients, size=num_clients, replace=False))
    clients = [
        ClientDataset(
            x=dataset.clients[i].x, y=dataset.clients[i].y, client_id=new_id
        )
        for new_id, i in enumerate(keep)
    ]
    return FederatedDataset(
        clients=clients,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
        num_classes=dataset.num_classes,
        in_channels=dataset.in_channels,
        image_size=dataset.image_size,
        name=f"{dataset.name}-subset{num_clients}",
    )
