"""Analysis from the paper's appendices: sampling propositions, Theorem 2."""

from repro.theory.sampling import (
    sticky_advantage_horizon,
    sticky_expected_gap,
    sticky_resample_prob,
    uniform_expected_gap,
    uniform_resample_prob,
)
from repro.theory.convergence import (
    ConvergenceSetting,
    convergence_bound,
    prescribed_learning_rate,
    suggest_learning_rate,
    variance_amplification,
)

__all__ = [
    "uniform_resample_prob",
    "uniform_expected_gap",
    "sticky_resample_prob",
    "sticky_expected_gap",
    "sticky_advantage_horizon",
    "variance_amplification",
    "prescribed_learning_rate",
    "suggest_learning_rate",
    "convergence_bound",
    "ConvergenceSetting",
]
