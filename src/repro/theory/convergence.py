"""Theorem 2: convergence-rate machinery for sticky sampling.

Provides the variance amplification term

.. math::

    A = \\frac{K}{N}\\Big(\\frac{S^2}{C} + \\frac{(N-S)^2}{K-C}\\Big)
        \\sum_{i=1}^N p_i^2,

the prescribed learning rate ``γ = sqrt(K / (E(σ² + E) T A))`` (Eq. 8), and
the resulting bound on ``min_t ‖∇F(w_t)‖²`` (Eq. 9).  With equal weights
and no sticky group the machinery reduces to FedAvg's ``O(1/sqrt(KT))``
(§4.2), which the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "variance_amplification",
    "prescribed_learning_rate",
    "suggest_learning_rate",
    "convergence_bound",
    "ConvergenceSetting",
]


def variance_amplification(
    n: int, k: int, s: int, c: int, p: np.ndarray
) -> float:
    """The A-term of Theorem 2.

    For uniform weights ``p_i = 1/N`` and the degenerate "no sticky group"
    configuration the paper notes ``A = 1``; that limit corresponds to
    ``S² / C + (N-S)² / (K-C) → N² / K`` (all mass on one bucket).
    """
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or len(p) != n:
        raise ValueError(f"p must have length N={n}")
    if not np.isclose(p.sum(), 1.0, atol=1e-6):
        raise ValueError("client weights must sum to 1")
    if not 0 < k <= n:
        raise ValueError("need 0 < K <= N")
    if not 0 <= c <= k or not c <= s <= n:
        raise ValueError("need 0 <= C <= K and C <= S <= N")
    sum_p2 = float((p**2).sum())
    bucket = 0.0
    if c > 0:
        bucket += s**2 / c
    if k - c > 0:
        bucket += (n - s) ** 2 / (k - c)
    return (k / n) * bucket * sum_p2


def prescribed_learning_rate(
    k: int, t: int, a: float, local_steps: int, sigma2: float
) -> float:
    """Eq. 8: ``γ = sqrt(K / (E(σ² + E) · T · A))``."""
    if min(k, t, local_steps) <= 0 or a <= 0 or sigma2 < 0:
        raise ValueError("invalid convergence-rate inputs")
    return float(
        np.sqrt(k / (local_steps * (sigma2 + local_steps) * t * a))
    )


@dataclass(frozen=True)
class ConvergenceSetting:
    """Problem constants treated as O(1) in Theorem 2."""

    lipschitz_smooth: float = 1.0  # L_s
    lipschitz_cont: float = 1.0  # L_c
    loss_gap: float = 1.0  # F(w_1) - F*
    sigma2: float = 1.0  # local gradient variance bound


def suggest_learning_rate(
    *,
    num_clients: int,
    num_sampled: int,
    group_size: int,
    sticky_count: int,
    rounds: int,
    local_steps: int,
    p: np.ndarray,
    sigma2: float = 1.0,
) -> float:
    """Theorem-2-guided client learning rate for a planned run.

    Combines :func:`variance_amplification` and
    :func:`prescribed_learning_rate` (Eq. 8) into one call taking the same
    vocabulary as :class:`~repro.fl.config.RunConfig` / the samplers.  The
    bound's constants are loose, so treat the result as a starting point
    for tuning rather than an optimum — but it scales correctly with
    T, E, K, and the sticky geometry.
    """
    a = variance_amplification(
        num_clients, num_sampled, group_size, sticky_count, p
    )
    return prescribed_learning_rate(
        k=num_sampled, t=rounds, a=a, local_steps=local_steps, sigma2=sigma2
    )


def convergence_bound(
    n: int,
    k: int,
    s: int,
    c: int,
    p: np.ndarray,
    t: int,
    local_steps: int,
    setting: ConvergenceSetting = ConvergenceSetting(),
) -> float:
    """Eq. 9 bound on ``min_t ‖∇F(w_t)‖²`` up to the paper's constants.

    Evaluates ``sqrt((1 + σ²/E) · A / (K T)) + K / (T A)`` — the two terms
    of Eq. 9 with the O(·) constants set to 1, which is what the test suite
    uses to check monotonicity properties (more rounds → smaller bound;
    bigger variance amplification → bigger bound).
    """
    a = variance_amplification(n, k, s, c, p)
    if t <= 0 or local_steps <= 0:
        raise ValueError("T and E must be positive")
    term1 = np.sqrt(
        (1.0 + setting.sigma2 / local_steps) * a / (k * t)
    )
    term2 = k / (t * a)
    return float(term1 + term2)
