"""Appendix A: re-sampling probability analysis of the two samplers.

Proposition 1 (uniform sampling): a just-sampled client is next sampled
after exactly ``r`` rounds with probability ``(K/N)·(1 − K/N)^{r−1}``; the
expected gap is ``N/K`` rounds.

Proposition 2 (sticky sampling): a just-sampled client (which, per
Algorithm 2, is *in the sticky group* at the start of the next round) is
next sampled after exactly ``r`` rounds with probability

.. math::

    \\frac{1}{(N-S)K - (K-C)S}\\Big(\\frac{K(NC - SK)}{S}(1 - K/S)^{r-1}
    + (K-C)^2 (1 - \\tfrac{K-C}{N-S})^{r-1}\\Big)

with the same ``N/K`` expected gap — sticky sampling front-loads the
re-sampling probability without changing its mean.  These closed forms
drive the §3.1 case study (20.0%, 15.0%, 11.2%, … for the FEMNIST
defaults) and are Monte-Carlo-validated in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_resample_prob",
    "uniform_expected_gap",
    "sticky_resample_prob",
    "sticky_expected_gap",
    "sticky_advantage_horizon",
]


def _check_uniform(n: int, k: int) -> None:
    if not 0 < k <= n:
        raise ValueError(f"need 0 < K <= N, got K={k}, N={n}")


def _check_sticky(n: int, k: int, s: int, c: int) -> None:
    _check_uniform(n, k)
    if not 0 < c <= k:
        raise ValueError(f"need 0 < C <= K, got C={c}, K={k}")
    if not c <= s < n:
        raise ValueError(f"need C <= S < N, got S={s}")
    if k - c > n - s:
        raise ValueError("non-sticky demand K-C exceeds pool N-S")
    if s < k:
        # the closed form's first geometric term requires K <= S
        raise ValueError(f"Proposition 2 assumes S >= K, got S={s}, K={k}")


def uniform_resample_prob(n: int, k: int, r: int | np.ndarray) -> np.ndarray:
    """Proposition 1: P(next sampled after exactly r rounds), uniform."""
    _check_uniform(n, k)
    r = np.asarray(r, dtype=np.float64)
    if np.any(r < 1):
        raise ValueError("r must be >= 1")
    ratio = k / n
    return ratio * (1.0 - ratio) ** (r - 1.0)


def uniform_expected_gap(n: int, k: int) -> float:
    """Proposition 1: expected rounds between participations = N/K."""
    _check_uniform(n, k)
    return n / k


def sticky_resample_prob(
    n: int, k: int, s: int, c: int, r: int | np.ndarray
) -> np.ndarray:
    """Proposition 2: P(next sampled after exactly r rounds), sticky."""
    _check_sticky(n, k, s, c)
    r = np.asarray(r, dtype=np.float64)
    if np.any(r < 1):
        raise ValueError("r must be >= 1")
    denom = (n - s) * k - (k - c) * s
    if denom <= 0:
        raise ValueError(
            "degenerate configuration: (N-S)K - (K-C)S must be positive"
        )
    term_sticky = (k * (n * c - s * k) / s) * (1.0 - k / s) ** (r - 1.0)
    term_non = (k - c) ** 2 * (1.0 - (k - c) / (n - s)) ** (r - 1.0)
    return (term_sticky + term_non) / denom


def sticky_expected_gap(n: int, k: int, s: int, c: int) -> float:
    """Proposition 2: the expected re-sampling gap (analytically = N/K).

    Proposition 2's pmf is a mixture of two geometric-like terms
    ``a_j · (1-p_j)^{r-1}``; each contributes ``a_j / p_j²`` to ``Σ r·P(r)``
    (since ``Σ r x^{r-1} = 1/(1-x)²``).  The paper states the mixture mean
    equals ``N/K``; computing it from the closed form, as here, lets the
    test suite verify that claim rather than assume it.

    Edge case found by property testing: the N/K identity requires ``C < K``.
    With ``C == K`` the sticky group never rotates (no rebalance path), the
    chain is reducible, and the conditional mean gap for a sticky member is
    ``S/K`` instead.
    """
    _check_sticky(n, k, s, c)
    denom = (n - s) * k - (k - c) * s
    a1 = (k * (n * c - s * k) / s) / denom
    p1 = k / s
    a2 = (k - c) ** 2 / denom
    p2 = (k - c) / (n - s)
    total = a1 / p1**2
    if k > c:  # the non-sticky escape path exists only when K > C
        total += a2 / p2**2
    return float(total)


def sticky_advantage_horizon(n: int, k: int, s: int, c: int) -> int:
    """§A.3: rounds r for which sticky re-sampling beats uniform.

    Returns ``1 + floor(log(CN/(SK)) / log(S(N−K)/(N(S−K))))`` — the horizon
    within which a sticky-group client's lower-bound re-sampling probability
    ``(C/S)(1−K/S)^{r−1}`` still exceeds uniform's ``(K/N)(1−K/N)^{r−1}``.
    """
    _check_sticky(n, k, s, c)
    if c / s <= k / n:
        return 0
    if s == k:
        return 10**9  # (1 - K/S) = 0: the bound holds for r = 1 only
    num = np.log((c * n) / (s * k))
    den = np.log((s * (n - k)) / (n * (s - k)))
    if den <= 0:
        return 10**9
    return int(1 + np.floor(num / den))
