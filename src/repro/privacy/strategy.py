"""``PrivateStrategy`` — privacy as a composable compression wrapper.

The engine's compression seam is the one point every scheduler's client
updates pass through, so privacy plugs in exactly like quantization does
(:class:`~repro.compression.quantized.QuantizedStrategy`): wrap any
:class:`~repro.compression.base.CompressionStrategy` and privatize what
clients upload, leaving the sync/async/failure schedulers untouched.

Two modes:

``"gaussian"``
    DP-FedAvg-style release: clip the local delta to L2 norm ``S``
    (:mod:`repro.privacy.clipping`), let the wrapped strategy pick its
    coordinates, then add ``N(0, (z·S)²)`` to the *transmitted values
    only* (:mod:`repro.privacy.mechanisms`) — the same coordinates go on
    the wire, so every byte count is exactly the wrapped strategy's.  An
    :class:`~repro.privacy.accountant.RdpAccountant` charges one sampled
    Gaussian mechanism per aggregated round.

    With noise active, the wrapper **switches the wrapped strategy's
    client-side error compensation off** (its
    :class:`~repro.compression.error_comp.ResidualStore` is replaced by a
    ``NONE``-mode store at setup).  Error feedback accumulates the unsent
    mass of past updates and re-adds it before compression, so the
    compensated vector can exceed the clip bound by an unbounded margin —
    the noise would no longer match the mechanism's sensitivity and the
    reported ε would be fiction.  This is the "co-design, don't stack"
    lesson of constrained-DP FL: under DP, what each round uploads must
    itself be the clipped quantity.  (Server-side residuals such as STC's
    ``server_residual`` are post-processing of already-noised aggregates
    and stay untouched.)

    **The analyzed mechanism releases noisy values at a data-independent
    support.**  A sparsifying strategy whose clients pick their own top-k
    (:attr:`~repro.compression.base.CompressionStrategy.data_dependent_selection`)
    additionally releases the chosen *index set* — a data-dependent
    function of the private delta that no amount of value noise covers,
    so the accountant's (ε, δ) would overstate the guarantee.  Wrapping
    such a strategy with noise active therefore **raises** unless the
    caller passes ``values_only=True``, which emits a ``UserWarning`` and
    downgrades the claim explicitly: the stated ε then covers the
    released *values only*, never the coordinate choice.  Dense FedAvg
    and server/public-mask strategies (APF) need no such waiver.

``"random_defense"``
    Kim & Park's (2024) random gradient masking: before the wrapped
    strategy sees the delta, a fresh Bernoulli mask zeroes a
    ``defense_fraction`` of coordinates — a drop-in *random* mask
    schedule that blunts gradient-inversion without noise (and without a
    formal ε; :meth:`PrivateStrategy.privacy_epsilon_spent` stays None).

    This mode too switches the wrapped strategy's client-side error
    compensation off: a residual store would accumulate exactly the
    coordinates the mask suppressed and re-upload them in later rounds,
    eventually transmitting the masked information the defense exists to
    withhold.

Both modes feed norm-aware samplers the *privatized* norm: the engine's
``feed_update_norms`` hook asks :meth:`PrivateStrategy.feedback_norm`,
which reports the L2 norm of the values actually uploaded (noisy under
``gaussian``) instead of the raw local update — Optimal Client Sampling
under privacy noise never sees a clean norm.

>>> import numpy as np
>>> from repro.compression import FedAvgStrategy
>>> private = PrivateStrategy(FedAvgStrategy(), clip_norm=1.0,
...                           noise_multiplier=1.0, sample_rate=0.1)
>>> private.setup(4, np.random.default_rng(0))
>>> private.begin_round(1)
>>> payload = private.client_compress(0, np.full(4, 10.0), 1.0)
>>> float(np.linalg.norm(payload.data["dense"])) < 20.0   # clipped + noise
True
>>> agg = private.aggregate([(0, 1.0, payload)])
>>> private.end_round(agg, 1)
>>> 0.0 < private.privacy_epsilon_spent() < 3.0           # ε after 1 round
True
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.compression.base import (
    VALUE_KEYS,
    AggregateResult,
    ClientPayload,
    CompressionStrategy,
)
from repro.compression.error_comp import ErrorCompMode, ResidualStore
from repro.privacy.accountant import DEFAULT_ORDERS, RdpAccountant
from repro.privacy.clipping import clip_by_l2
from repro.privacy.mechanisms import add_gaussian_noise, gaussian_noise_std

__all__ = [
    "DEFAULT_DEFENSE_FRACTION",
    "PRIVACY_MODES",
    "PrivateStrategy",
    "build_private_strategy",
]

#: Valid ``RunConfig.privacy_mode`` values ("off" disables wrapping).
PRIVACY_MODES = ("off", "gaussian", "random_defense")

#: ``random_defense`` masking fraction used when none is configured —
#: the single source for the mode's default.
DEFAULT_DEFENSE_FRACTION = 0.5


def _payload_values_norm(payload: ClientPayload) -> float:
    """L2 norm of everything a payload actually puts on the wire."""
    total = 0.0
    for key in VALUE_KEYS:
        values = payload.data.get(key)
        if values is not None and len(values):
            total += float(np.dot(values, values))
    return math.sqrt(total)


class PrivateStrategy(CompressionStrategy):
    """Wrap ``inner`` with clipping + Gaussian noise or random masking.

    Parameters
    ----------
    inner:
        Any compression strategy; its masks, byte accounting and
        aggregation run unchanged.
    mode:
        ``"gaussian"`` (default) or ``"random_defense"``.
    clip_norm:
        L2 sensitivity bound S applied before ``inner`` compresses.
        ``None`` disables clipping (forbidden when noise is on — noise
        without a sensitivity bound carries no guarantee).
    noise_multiplier:
        z — per-coordinate noise std in units of ``clip_norm``.  0 adds
        nothing, draws nothing, and leaves the wrapped strategy
        bit-identical (the regression-tested no-op).
    defense_fraction:
        ``random_defense`` only: fraction of coordinates zeroed per
        client per round.
    values_only:
        Waiver for wrapping a strategy with
        :attr:`~repro.compression.base.CompressionStrategy.data_dependent_selection`
        under active gaussian noise: acknowledge (with a ``UserWarning``)
        that the reported ε covers only the released values, not the
        client-chosen index set.  Without it such a combination raises.
    sample_rate / delta / orders:
        Accountant parameters (see :class:`~repro.privacy.accountant.RdpAccountant`).
    """

    def __init__(
        self,
        inner: CompressionStrategy,
        *,
        mode: str = "gaussian",
        clip_norm: Optional[float] = None,
        noise_multiplier: float = 0.0,
        defense_fraction: float = DEFAULT_DEFENSE_FRACTION,
        values_only: bool = False,
        sample_rate: float = 1.0,
        delta: float = 1e-5,
        orders: Sequence[int] = DEFAULT_ORDERS,
        _warn_stacklevel: int = 2,
    ):
        super().__init__()
        if mode not in ("gaussian", "random_defense"):
            raise ValueError(
                f"unknown privacy mode {mode!r}; expected 'gaussian' or "
                "'random_defense'"
            )
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if mode == "gaussian" and noise_multiplier > 0 and clip_norm is None:
            raise ValueError(
                "gaussian mode with noise requires clip_norm: noise is "
                "calibrated to the clip bound (the mechanism's sensitivity)"
            )
        if not 0.0 <= defense_fraction < 1.0:
            raise ValueError("defense_fraction must be in [0, 1)")
        if values_only and mode != "gaussian":
            # mirror RunConfig.validate: a waiver on a mechanism with no
            # epsilon records an honesty concession that never applies
            raise ValueError(
                "values_only qualifies the gaussian mechanism's epsilon; "
                f"it means nothing under mode {mode!r}"
            )
        if (
            mode == "gaussian"
            and noise_multiplier > 0
            and inner.data_dependent_selection
        ):
            if not values_only:
                raise ValueError(
                    f"strategy {inner.name!r} selects its transmitted "
                    "coordinates from each client's private update; the "
                    "Gaussian mechanism's (eps, delta) covers the noised "
                    "values but not that index release.  Pass "
                    "values_only=True to accept values-only accounting, "
                    "or wrap a strategy with data-independent selection "
                    "(dense FedAvg, a server/public mask)"
                )
            warnings.warn(
                f"{inner.name!r} transmits client-chosen indices: the "
                "accounted epsilon covers the released values only — the "
                "index set is an unaccounted data-dependent release",
                UserWarning,
                stacklevel=_warn_stacklevel,
            )
        self.inner = inner
        self.values_only = bool(values_only)
        self.mode = mode
        self.clip_norm = clip_norm
        self.noise_multiplier = float(noise_multiplier)
        self.defense_fraction = float(defense_fraction)
        self.sample_rate = float(sample_rate)
        self.delta = float(delta)
        self.orders = tuple(orders)
        self.accountant: Optional[RdpAccountant] = None
        self.name = (
            f"{inner.name}+dp" if mode == "gaussian" else f"{inner.name}+rdmask"
        )
        self._rng: np.random.Generator = np.random.default_rng(0)
        self._observed: Dict[int, float] = {}

    # -- lifecycle ----------------------------------------------------------
    def setup(self, d: int, rng: np.random.Generator, dtype=np.float64) -> None:
        super().setup(d, rng, dtype=dtype)
        self._rng = rng
        self.inner.setup(d, rng, dtype=dtype)
        self._observed = {}
        if self.mode == "gaussian" and self.noise_multiplier > 0:
            self._disable_error_compensation()
            self.accountant = RdpAccountant(
                self.noise_multiplier,
                sample_rate=self.sample_rate,
                delta=self.delta,
                orders=self.orders,
            )
        elif self.mode == "random_defense" and self.defense_fraction > 0:
            self._disable_error_compensation()

    def _disable_error_compensation(self) -> None:
        """Keep the privatization per-round honest (see the module docs).

        Client-side residual stores re-add unsent mass of earlier updates
        before compression.  Under gaussian noise that would push uploads
        past ``clip_norm`` (the mechanism's sensitivity); under
        ``random_defense`` it would re-upload the very coordinates the
        random mask suppressed.  Every ``ResidualStore`` found down the
        wrapper chain is replaced by a ``NONE``-mode store.
        """
        strategy = self.inner
        while strategy is not None:
            store = getattr(strategy, "residuals", None)
            if isinstance(store, ResidualStore):
                strategy.residuals = ResidualStore(ErrorCompMode.NONE)
            strategy = getattr(strategy, "inner", None)

    def bind_sharding(self, runtime) -> None:
        # the mechanism clips/noises values; sharded aggregation kernels
        # belong to the wrapped strategy
        super().bind_sharding(runtime)
        self.inner.bind_sharding(runtime)

    def begin_round(self, round_idx: int) -> None:
        # drop prior-round observations so feedback_norm can never hand a
        # sampler a stale noisy norm for a client that did not compress
        # this round
        self._observed.clear()
        self.inner.begin_round(round_idx)

    def end_round(self, agg: AggregateResult, round_idx: int) -> None:
        self.inner.end_round(agg, round_idx)
        if self.accountant is not None:
            # one aggregated round == one sampled-Gaussian invocation
            self.accountant.step()

    def abort_round(self, round_idx: int) -> None:
        # nothing was uploaded, so no privacy was spent — no step
        self.inner.abort_round(round_idx)

    def limit_residuals(self, max_clients) -> None:
        self.inner.limit_residuals(max_clients)

    # -- pure delegation ----------------------------------------------------
    @property
    def data_dependent_selection(self) -> bool:
        # clipping/noising/masking transform values; whether the support
        # is client-chosen is the wrapped strategy's property
        return self.inner.data_dependent_selection

    def downstream_extra_bytes(self) -> int:
        return self.inner.downstream_extra_bytes()

    def nominal_upstream_bytes(self) -> int:
        return self.inner.nominal_upstream_bytes()

    def aggregate(
        self, payloads: Sequence[Tuple[int, float, ClientPayload]]
    ) -> AggregateResult:
        return self.inner.aggregate(payloads)

    # -- the privatizing step -----------------------------------------------
    def client_compress(
        self, client_id: int, delta: np.ndarray, weight: float
    ) -> ClientPayload:
        if self.mode == "random_defense":
            return self._compress_random_defense(client_id, delta, weight)
        return self._compress_gaussian(client_id, delta, weight)

    def _compress_gaussian(
        self, client_id: int, delta: np.ndarray, weight: float
    ) -> ClientPayload:
        clipped, _ = clip_by_l2(delta, self.clip_norm)
        payload = self.inner.client_compress(client_id, clipped, weight)
        if self.noise_multiplier == 0.0:
            # exact no-op: no noise, no RNG draw, no recorded norm — the
            # wrapped strategy's behavior is bit-identical end to end
            return payload
        std = gaussian_noise_std(self.clip_norm, self.noise_multiplier)
        for key in VALUE_KEYS:
            values = payload.data.get(key)
            if values is None or len(values) == 0:
                continue
            payload.data[key] = add_gaussian_noise(values, std, self._rng)
        self._observed[int(client_id)] = _payload_values_norm(payload)
        return payload

    def _compress_random_defense(
        self, client_id: int, delta: np.ndarray, weight: float
    ) -> ClientPayload:
        clipped, _ = clip_by_l2(delta, self.clip_norm)
        if self.defense_fraction > 0.0:
            keep = self._rng.random(len(clipped)) >= self.defense_fraction
            clipped = (clipped * keep).astype(clipped.dtype, copy=False)
        payload = self.inner.client_compress(client_id, clipped, weight)
        self._observed[int(client_id)] = _payload_values_norm(payload)
        return payload

    # -- privacy-aware engine hooks -----------------------------------------
    def feedback_norm(self, client_id: int, delta: np.ndarray) -> float:
        """The norm a norm-aware sampler may observe: privatized, not raw.

        For a client that compressed this round, the recorded norm of the
        (noisy) payload it actually uploaded.  With noise active, a
        client that released *nothing* this round has no privatized
        observable, so the fallback is the data-independent ceiling
        ``clip_norm`` — never the raw local norm, which would leak the
        very magnitude the mechanism withholds.  Without noise the
        wrapper adds no guarantee and delegates to the inner strategy.
        """
        recorded = self._observed.get(int(client_id))
        if recorded is not None:
            return recorded
        if self.mode == "gaussian" and self.noise_multiplier > 0:
            return float(self.clip_norm)
        return self.inner.feedback_norm(client_id, delta)

    def privacy_epsilon_spent(self) -> Optional[float]:
        """Cumulative ε after the rounds aggregated so far (None without
        an accountant — i.e. zero noise or ``random_defense``)."""
        if self.accountant is None:
            return None
        return self.accountant.epsilon()


def build_private_strategy(
    inner: CompressionStrategy,
    *,
    mode: str,
    rounds: int,
    sample_rate: float,
    epsilon: Optional[float] = None,
    delta: float = 1e-5,
    clip_norm: Optional[float] = None,
    noise_multiplier: Optional[float] = None,
    defense_fraction: Optional[float] = None,
    values_only: bool = False,
) -> PrivateStrategy:
    """Assemble a :class:`PrivateStrategy` from run-level knobs.

    This is the ``RunConfig`` → privacy bridge the server uses: in
    ``gaussian`` mode an explicit ``noise_multiplier`` wins; otherwise z
    is calibrated so the full ``rounds``-round spend stays within
    ``epsilon`` at ``delta``
    (:func:`~repro.privacy.accountant.calibrate_noise_multiplier`).
    ``values_only`` is :class:`PrivateStrategy`'s waiver for strategies
    with data-dependent coordinate selection.
    """
    if mode not in PRIVACY_MODES or mode == "off":
        raise ValueError(
            f"cannot build a private strategy for mode {mode!r}"
        )
    if mode == "gaussian" and noise_multiplier is None:
        if epsilon is None:
            raise ValueError(
                "gaussian privacy needs privacy_epsilon (a total budget to "
                "calibrate noise against) or an explicit noise multiplier"
            )
        from repro.privacy.accountant import calibrate_noise_multiplier

        noise_multiplier = calibrate_noise_multiplier(
            epsilon, delta, rounds, sample_rate
        )
    return PrivateStrategy(
        inner,
        mode=mode,
        clip_norm=clip_norm,
        noise_multiplier=noise_multiplier or 0.0,
        defense_fraction=(
            defense_fraction
            if defense_fraction is not None
            else DEFAULT_DEFENSE_FRACTION
        ),
        values_only=values_only,
        sample_rate=sample_rate,
        delta=delta,
        # attribute the values-only warning to this function's caller,
        # not to the construction line below
        _warn_stacklevel=3,
    )
