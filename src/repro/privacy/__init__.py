"""Privacy-aware compression: clipping, Gaussian noise, RDP accounting.

GlueFL's sticky masks reveal exactly which coordinates each client deems
important; this subsystem makes the privacy counter-measures expressible
on the same compression seam the schedulers already share:

- :mod:`repro.privacy.clipping` — per-client L2 clipping (the sensitivity
  bound);
- :mod:`repro.privacy.mechanisms` — the Gaussian mechanism over
  transmitted values only (byte counts stay exact);
- :mod:`repro.privacy.accountant` — an RDP/moments accountant for the
  sampled Gaussian mechanism, plus noise calibration from a target ε;
- :mod:`repro.privacy.strategy` — :class:`PrivateStrategy`, the wrapper
  that composes all of it with any
  :class:`~repro.compression.base.CompressionStrategy`, and the
  ``random_defense`` mode (Kim & Park, 2024).

Enable per run with ``RunConfig(privacy_mode="gaussian",
privacy_epsilon=8.0, ...)`` — see :class:`~repro.fl.config.RunConfig` —
or wrap a strategy directly.  Strategies whose clients choose their own
transmitted coordinates (STC, the GlueFL mask) release a data-dependent
index set that value noise cannot cover, so noising them requires the
explicit ``values_only`` waiver (the reported ε then covers the released
values only):

>>> from repro.compression import STCStrategy
>>> from repro.privacy import PrivateStrategy
>>> PrivateStrategy(STCStrategy(q=0.2), clip_norm=1.0,
...                 noise_multiplier=1.2)   # doctest: +ELLIPSIS
Traceback (most recent call last):
ValueError: strategy 'stc' selects its transmitted coordinates...
>>> import warnings
>>> with warnings.catch_warnings():        # the waiver warns
...     warnings.simplefilter("ignore")
...     private = PrivateStrategy(STCStrategy(q=0.2), clip_norm=1.0,
...                               noise_multiplier=1.2, values_only=True)
>>> private.name
'stc+dp'

(``sample_rate`` stays at its default 1.0 above: the accountant's
subsampling amplification is only sound when clients are drawn by
:class:`~repro.fl.samplers.PoissonSampler` — the ``RunConfig`` path
asks the sampler via ``dp_sample_rate`` rather than trusting a
hand-supplied K/N.)
"""

from repro.privacy.accountant import (
    DEFAULT_ORDERS,
    RdpAccountant,
    calibrate_noise_multiplier,
    gaussian_rdp,
    rdp_to_epsilon,
    sampled_gaussian_rdp,
)
from repro.privacy.clipping import clip_by_l2, clip_factor
from repro.privacy.mechanisms import add_gaussian_noise, gaussian_noise_std
from repro.privacy.strategy import (
    DEFAULT_DEFENSE_FRACTION,
    PRIVACY_MODES,
    PrivateStrategy,
    build_private_strategy,
)

__all__ = [
    "DEFAULT_DEFENSE_FRACTION",
    "PRIVACY_MODES",
    "PrivateStrategy",
    "build_private_strategy",
    "RdpAccountant",
    "DEFAULT_ORDERS",
    "gaussian_rdp",
    "sampled_gaussian_rdp",
    "rdp_to_epsilon",
    "calibrate_noise_multiplier",
    "clip_by_l2",
    "clip_factor",
    "gaussian_noise_std",
    "add_gaussian_noise",
]
