"""Privacy-aware compression: clipping, Gaussian noise, RDP accounting.

GlueFL's sticky masks reveal exactly which coordinates each client deems
important; this subsystem makes the privacy counter-measures expressible
on the same compression seam the schedulers already share:

- :mod:`repro.privacy.clipping` — per-client L2 clipping (the sensitivity
  bound);
- :mod:`repro.privacy.mechanisms` — the Gaussian mechanism over
  transmitted values only (byte counts stay exact);
- :mod:`repro.privacy.accountant` — an RDP/moments accountant for the
  sampled Gaussian mechanism, plus noise calibration from a target ε;
- :mod:`repro.privacy.strategy` — :class:`PrivateStrategy`, the wrapper
  that composes all of it with any
  :class:`~repro.compression.base.CompressionStrategy`, and the
  ``random_defense`` mode (Kim & Park, 2024).

Enable per run with ``RunConfig(privacy_mode="gaussian",
privacy_epsilon=8.0, ...)`` — see :class:`~repro.fl.config.RunConfig` —
or wrap a strategy directly:

>>> from repro.compression import STCStrategy
>>> from repro.privacy import PrivateStrategy
>>> private = PrivateStrategy(STCStrategy(q=0.2), clip_norm=1.0,
...                           noise_multiplier=1.2, sample_rate=0.05)
>>> private.name
'stc+dp'
"""

from repro.privacy.accountant import (
    DEFAULT_ORDERS,
    RdpAccountant,
    calibrate_noise_multiplier,
    gaussian_rdp,
    rdp_to_epsilon,
    sampled_gaussian_rdp,
)
from repro.privacy.clipping import clip_by_l2, clip_factor
from repro.privacy.mechanisms import add_gaussian_noise, gaussian_noise_std
from repro.privacy.strategy import (
    PRIVACY_MODES,
    PrivateStrategy,
    build_private_strategy,
)

__all__ = [
    "PRIVACY_MODES",
    "PrivateStrategy",
    "build_private_strategy",
    "RdpAccountant",
    "DEFAULT_ORDERS",
    "gaussian_rdp",
    "sampled_gaussian_rdp",
    "rdp_to_epsilon",
    "calibrate_noise_multiplier",
    "clip_by_l2",
    "clip_factor",
    "gaussian_noise_std",
    "add_gaussian_noise",
]
