"""Rényi-DP (moments) accountant for the sampled Gaussian mechanism.

One FL round that (a) samples each client with rate ``q ≈ K/N``, (b) clips
every sampled update to L2 norm ``S`` and (c) perturbs it with Gaussian
noise of standard deviation ``z·S`` is one invocation of the *sampled
Gaussian mechanism* with noise multiplier ``z``.  Its Rényi divergence at
integer orders α is bounded by (Mironov, Talwar & Zhu, 2019, Thm. 5 /
the bound TF-Privacy and Opacus implement)::

    RDP(α) ≤ 1/(α−1) · log Σ_{k=0..α} C(α,k) (1−q)^{α−k} q^k · e^{(k²−k)/(2z²)}

which at ``q = 1`` collapses to the plain Gaussian mechanism's
``α / (2z²)``.  RDP composes by addition over rounds, and converts to an
``(ε, δ)`` guarantee via ``ε = min_α [ RDP(α)·T + log(1/δ)/(α−1) ]``.

Everything here is pure ``math``/``numpy`` — no external DP library.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_ORDERS",
    "gaussian_rdp",
    "sampled_gaussian_rdp",
    "rdp_to_epsilon",
    "RdpAccountant",
    "calibrate_noise_multiplier",
]

#: Integer Rényi orders the accountant optimizes over — dense where the
#: optimum usually lands (small α for big noise / many rounds) plus a
#: coarse high tail for nearly-noiseless settings.
DEFAULT_ORDERS: Tuple[int, ...] = tuple(range(2, 64)) + (
    64, 80, 96, 128, 192, 256, 512,
)


def gaussian_rdp(noise_multiplier: float, orders: Sequence[int]) -> np.ndarray:
    """RDP of one (unsampled) Gaussian mechanism at each order.

    ``RDP(α) = α / (2 z²)`` for sensitivity-1 noise ``N(0, z²)``.

    >>> gaussian_rdp(2.0, [2, 4]).tolist()
    [0.25, 0.5]
    """
    if noise_multiplier <= 0:
        return np.full(len(orders), math.inf)
    z2 = 2.0 * noise_multiplier**2
    return np.array([alpha / z2 for alpha in orders])


def _log_binom(n: int, k: int) -> float:
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def _sampled_rdp_one(q: float, noise_multiplier: float, alpha: int) -> float:
    """The integer-order sampled-Gaussian bound for one α (log-space)."""
    z2 = 2.0 * noise_multiplier**2
    log_terms = [
        _log_binom(alpha, k)
        + (alpha - k) * math.log1p(-q)
        + (k * math.log(q) if k else 0.0)
        + (k * k - k) / z2
        for k in range(alpha + 1)
    ]
    peak = max(log_terms)
    log_sum = peak + math.log(sum(math.exp(t - peak) for t in log_terms))
    # the bound can dip below 0 by float error for tiny q; RDP is ≥ 0
    return max(0.0, log_sum / (alpha - 1))


def sampled_gaussian_rdp(
    sample_rate: float, noise_multiplier: float, orders: Sequence[int]
) -> np.ndarray:
    """RDP of one sampled Gaussian mechanism at each integer order.

    ``sample_rate`` is the per-round client sampling probability (K/N in
    an FL round); ``sample_rate=1`` reproduces :func:`gaussian_rdp` and
    ``sample_rate=0`` releases nothing (RDP 0).

    >>> full = sampled_gaussian_rdp(1.0, 2.0, [2, 4])
    >>> bool(np.allclose(full, gaussian_rdp(2.0, [2, 4])))
    True
    >>> sampled_gaussian_rdp(0.0, 2.0, [2, 4]).tolist()
    [0.0, 0.0]
    >>> amplified = sampled_gaussian_rdp(0.1, 2.0, [2, 4])
    >>> bool((amplified < full).all())    # subsampling only ever helps
    True
    """
    if not 0.0 <= sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
    if noise_multiplier <= 0:
        return np.full(len(orders), math.inf)
    if sample_rate == 0.0:
        return np.zeros(len(orders))
    if sample_rate == 1.0:
        return gaussian_rdp(noise_multiplier, orders)
    out = np.empty(len(orders))
    for i, alpha in enumerate(orders):
        if int(alpha) != alpha or alpha < 2:
            raise ValueError(f"orders must be integers >= 2, got {alpha}")
        out[i] = _sampled_rdp_one(sample_rate, noise_multiplier, int(alpha))
    return out


def rdp_to_epsilon(
    rdp: np.ndarray, orders: Sequence[int], delta: float
) -> Tuple[float, int]:
    """Convert accumulated RDP to ``(ε, best_order)`` at a target δ.

    The standard conversion ``ε = RDP(α) + log(1/δ)/(α−1)``, minimized
    over the tracked orders.

    >>> eps, order = rdp_to_epsilon(gaussian_rdp(1.0, DEFAULT_ORDERS),
    ...                             DEFAULT_ORDERS, delta=1e-5)
    >>> 3.0 < eps < 6.0       # one σ=1 Gaussian release at δ=1e-5
    True
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    rdp = np.asarray(rdp, dtype=np.float64)
    eps = rdp + math.log(1.0 / delta) / (np.asarray(orders) - 1.0)
    best = int(np.argmin(eps))
    return float(eps[best]), int(orders[best])


class RdpAccountant:
    """Track privacy loss of repeated sampled-Gaussian rounds.

    Parameters
    ----------
    noise_multiplier:
        z — per-round noise standard deviation in units of the clip norm.
    sample_rate:
        Per-round client sampling probability (K/N).
    delta:
        Target δ used by :meth:`epsilon`.
    orders:
        Integer Rényi orders to optimize over.

    >>> acct = RdpAccountant(noise_multiplier=1.0, sample_rate=0.1)
    >>> acct.step(10)
    >>> e10 = acct.epsilon()
    >>> acct.step(10)
    >>> acct.epsilon() > e10        # ε is monotone in rounds
    True
    >>> acct.steps
    20
    """

    def __init__(
        self,
        noise_multiplier: float,
        sample_rate: float = 1.0,
        delta: float = 1e-5,
        orders: Sequence[int] = DEFAULT_ORDERS,
    ):
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.noise_multiplier = float(noise_multiplier)
        self.sample_rate = float(sample_rate)
        self.delta = float(delta)
        self.orders = tuple(orders)
        self._per_step = (
            np.full(len(self.orders), math.inf)
            if noise_multiplier == 0
            else sampled_gaussian_rdp(
                self.sample_rate, self.noise_multiplier, self.orders
            )
        )
        self.steps = 0

    def step(self, rounds: int = 1) -> None:
        """Charge ``rounds`` further mechanism invocations."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.steps += rounds

    def epsilon(self) -> float:
        """The ``(ε, δ)`` guarantee spent so far (``inf`` without noise)."""
        if self.steps == 0:
            return 0.0
        if self.noise_multiplier == 0:
            return math.inf
        eps, _ = rdp_to_epsilon(
            self._per_step * self.steps, self.orders, self.delta
        )
        return eps


def calibrate_noise_multiplier(
    target_epsilon: float,
    delta: float,
    rounds: int,
    sample_rate: float = 1.0,
    orders: Sequence[int] = DEFAULT_ORDERS,
    precision: float = 1e-3,
    max_sigma: float = 1e4,
) -> float:
    """Smallest noise multiplier whose ``rounds``-round spend stays ≤ ε.

    Bisects z (ε is strictly decreasing in z), so the returned multiplier
    meets the target with minimal accuracy damage.

    >>> z = calibrate_noise_multiplier(8.0, 1e-5, rounds=50, sample_rate=0.1)
    >>> acct = RdpAccountant(z, sample_rate=0.1)
    >>> acct.step(50)
    >>> acct.epsilon() <= 8.0
    True
    """
    if target_epsilon <= 0:
        raise ValueError("target_epsilon must be positive")
    if rounds <= 0:
        raise ValueError("rounds must be positive")

    def spend(z: float) -> float:
        rdp = sampled_gaussian_rdp(sample_rate, z, orders) * rounds
        eps, _ = rdp_to_epsilon(rdp, orders, delta)
        return eps

    lo, hi = precision, 1.0
    while spend(hi) > target_epsilon:
        hi *= 2.0
        if hi > max_sigma:
            raise ValueError(
                f"cannot reach epsilon={target_epsilon} within "
                f"noise multiplier {max_sigma}"
            )
    if spend(lo) <= target_epsilon:
        return lo
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if spend(mid) <= target_epsilon:
            hi = mid
        else:
            lo = mid
    return hi
