"""The Gaussian mechanism, applied to compressed value payloads.

A client's privatized upload perturbs only the coordinates it actually
transmits — the *masked* coordinates chosen by the wrapped compression
strategy — so the wire size of every payload is exactly what the
non-private strategy would have sent: the bandwidth model stays exact,
and the noise rides inside the values the server was receiving anyway.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_noise_std", "add_gaussian_noise"]


def gaussian_noise_std(clip_norm: float, noise_multiplier: float) -> float:
    """Per-client noise standard deviation ``z · S``.

    With every update clipped to L2 norm ``S`` (the mechanism's
    sensitivity), noise ``N(0, (z·S)²)`` per released coordinate gives the
    round the sampled-Gaussian guarantee the accountant tracks.

    >>> gaussian_noise_std(2.0, 0.5)
    1.0
    """
    if clip_norm <= 0:
        raise ValueError(f"clip_norm must be positive, got {clip_norm}")
    if noise_multiplier < 0:
        raise ValueError("noise_multiplier must be non-negative")
    return noise_multiplier * clip_norm


def add_gaussian_noise(
    values: np.ndarray, std: float, rng: np.random.Generator
) -> np.ndarray:
    """Return ``values + N(0, std²)``, preserving dtype and length.

    ``std == 0`` returns the input array unchanged (and draws nothing
    from ``rng``), so a zero-noise privacy wrapper stays bit-identical
    to its wrapped strategy.

    >>> import numpy as np
    >>> v = np.ones(3, dtype=np.float32)
    >>> out = add_gaussian_noise(v, 0.0, np.random.default_rng(0))
    >>> out is v
    True
    >>> noisy = add_gaussian_noise(v, 1.0, np.random.default_rng(0))
    >>> noisy.dtype == v.dtype and noisy.shape == v.shape
    True
    """
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0.0 or len(values) == 0:
        return values
    noise = rng.normal(0.0, std, size=len(values))
    return (values + noise).astype(values.dtype, copy=False)
