"""Per-client update clipping — the sensitivity bound of DP-FedAvg.

Differential privacy needs a hard bound on how much any one client can
move the aggregate; the standard bound is an L2 clip of the local update
*before* compression and noising (Abadi et al., 2016; McMahan et al.,
2018).  Clipping is a pure projection, so it composes with any
:class:`~repro.compression.base.CompressionStrategy` downstream.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["clip_factor", "clip_by_l2"]


def clip_factor(norm: float, clip_norm: float) -> float:
    """Scale factor projecting a vector of length ``norm`` into the L2 ball.

    Returns ``min(1, clip_norm / norm)`` — 1.0 when the vector already
    fits (clipping never *grows* an update).

    >>> clip_factor(10.0, 5.0)
    0.5
    >>> clip_factor(3.0, 5.0)
    1.0
    >>> clip_factor(0.0, 5.0)
    1.0
    """
    if clip_norm <= 0:
        raise ValueError(f"clip_norm must be positive, got {clip_norm}")
    if norm <= clip_norm:
        return 1.0
    return clip_norm / norm


def clip_by_l2(
    delta: np.ndarray, clip_norm: Optional[float]
) -> Tuple[np.ndarray, float]:
    """Project ``delta`` into the L2 ball of radius ``clip_norm``.

    Returns ``(clipped, factor)``.  ``clip_norm=None`` disables clipping
    entirely (``factor == 1.0`` and ``delta`` is returned *unscaled and
    uncopied*), so a no-op privacy wrapper stays bit-identical to its
    wrapped strategy.  When clipping does fire, the result is a fresh
    array in the input's dtype.

    >>> import numpy as np
    >>> v = np.array([3.0, 4.0])            # ‖v‖₂ = 5
    >>> clipped, factor = clip_by_l2(v, 2.5)
    >>> clipped.tolist(), factor
    ([1.5, 2.0], 0.5)
    >>> same, factor = clip_by_l2(v, None)  # disabled: the very same array
    >>> same is v, factor
    (True, 1.0)
    """
    if clip_norm is None:
        return delta, 1.0
    factor = clip_factor(float(np.linalg.norm(delta)), clip_norm)
    if factor >= 1.0:
        return delta, 1.0
    return (delta * factor).astype(delta.dtype, copy=False), factor
