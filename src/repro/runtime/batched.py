"""Batched replica training: many clients' local SGD through one model.

At quickstart scale the per-step tensors are small (batch 16 images of a
few thousand pixels), so the numpy layer stack is *overhead*-bound: most of
the wall-clock goes to per-op dispatch, allocator traffic, and BLAS calls
too small to tile well.  Running ``R`` clients' mini-batches through one
replica with a leading replica axis turns R tiny GEMMs into one R-times
larger batched GEMM and amortizes every fixed cost R-fold — the same local
SGD math, vectorized across clients.

Semantics
---------
Each replica trains its *own* parameter trajectory: parameters, gradients,
and momentum live in ``(R, d)`` matrices whose rows never mix.  Per-layer
weights are column-slice **views** of those matrices (``mat[:, a:b]``
reshaped to ``(R, *shape)`` — a pure view because the flat layout is
contiguous per row), so the optimizer is three vectorized ufunc passes over
``(R, d)`` and the layers index no python-side per-replica state.  Client
mini-batches come from the same named RNG streams the serial trainer uses
(``client/{cid}/round/{t}``), so every replica sees exactly the data it
would have seen serially.  Clients whose per-step batches come out smaller
than the group's largest are padded with all-zero rows plus a ``(R, B)``
validity mask; every reduction (batch-norm statistics, the loss, the loss
gradient) is mask-corrected, so padded rows contribute *exact* zeros and
the trajectory matches the unpadded one to accumulation order.

Two reductions are reformulated relative to the serial layers, which is
why ``RunConfig.batch_replicas`` is opt-in and golden-pinned runs keep it
off: batch-norm statistics are one-pass (``Var = E[x²] − E[x]²`` via a
single einsum, clamped at zero) and its input gradient is assembled from
channel sums as ``dx = A·g + B·x + C`` instead of re-centering per element.
Both are algebraically identical to the serial two-pass forms; in floating
point they differ at accumulation-order level (~1e-7 relative in float32).
Agreement with the serial trainer is pinned to tight tolerances by
``tests/runtime/test_batched.py``.

Supported models are pure layer chains (:class:`~repro.nn.module.Sequential`
pipelines, possibly wrapped, e.g. ``SimpleCNN``/``MLP``) built from
``Conv2d``/``BatchNorm1d``/``BatchNorm2d``/``Linear`` plus parameterless
per-sample layers (``ReLU``, pooling, ``Flatten``), which run through a
reshape adapter.  Anything else raises :class:`UnsupportedModelError` and
the thread backend falls back to per-client training.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# repro: allow-file[arena-escape] -- intra-step handoff by design: scratch
# returned (activations/grads) or cached for backward here is consumed within
# the same local step and is dead before the trainer's per-step
# BufferArena.reset(); nothing crosses a reset epoch (pinned by
# tests/runtime/test_arena.py).

from repro.nn.functional import conv_out_size
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.runtime.arena import (
    BufferArena,
    activate,
    scratch_empty,
    scratch_zeros,
)

__all__ = [
    "UnsupportedModelError",
    "RaggedBatchError",
    "BatchedReplicaTrainer",
]


class UnsupportedModelError(TypeError):
    """The model is not a pure chain of batched-trainable layers."""


class RaggedBatchError(ValueError):
    """Clients in one group drew mini-batches of different sizes."""


#: parameterless layers whose forward/backward are per-sample maps — they
#: run unchanged on ``(R·B, ...)`` through the reshape adapter
_PER_SAMPLE = (ReLU, MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten)


def _chain_leaves(model: Module) -> List[Module]:
    """Flatten a chain-shaped module tree into its ordered leaf layers.

    Mirrors ``named_parameters`` traversal order (own params, then children
    in insertion order), which is what keeps the column layout of the
    ``(R, d)`` matrices identical to :class:`~repro.nn.flat.FlatParamView`.
    """
    if isinstance(model, Sequential):
        leaves: List[Module] = []
        for layer in model.layers:
            leaves.extend(_chain_leaves(layer))
        return leaves
    if model._params or not model._children:
        if model._children:
            raise UnsupportedModelError(
                f"{type(model).__name__} mixes own parameters with children"
            )
        return [model]
    children = list(model._children.values())
    if len(children) != 1:
        raise UnsupportedModelError(
            f"{type(model).__name__} branches into {len(children)} children; "
            "batched replicas support pure layer chains only"
        )
    return _chain_leaves(children[0])


def _view(mat: np.ndarray, start: int, shape: Tuple[int, ...]) -> np.ndarray:
    """``(R, *shape)`` view of columns ``[start, start+prod(shape))``."""
    size = int(np.prod(shape)) if shape else 1
    return mat[:, start : start + size].reshape((mat.shape[0],) + tuple(shape))


# -- batched layer ops ---------------------------------------------------------


class _BatchedConv:
    """Grouped conv with the replica *and* sample axes folded into the GEMM.

    The im2col matrix is laid out ``(R, G, M, B·L)`` — every replica's whole
    mini-batch becomes columns of one GEMM — so each forward/backward runs
    ``R·G`` large BLAS calls instead of the ``R·B·G`` tiny ones the serial
    layer issues, and the weight gradient contracts over ``B·L`` directly
    (no ``(R, B, OC/G, M)`` intermediate to materialize and reduce).
    """

    def __init__(self, layer: Conv2d, w_off: int, b_off: Optional[int]):
        self.k = layer.kernel_size
        self.s = layer.stride
        self.p = layer.padding
        self.g = layer.groups
        self.oc = layer.out_channels
        self.w_shape = layer.weight.data.shape  # (OC, C/G, k, k)
        self.w_off = w_off
        self.b_off = b_off
        #: set on the model's first op: its input gradient is discarded by
        #: the training loop, so backward skips the dcols GEMM + scatter
        self.skip_dx = False
        self._cols: Optional[np.ndarray] = None
        self._dims: Optional[Tuple[int, ...]] = None

    def _weight(self, params: np.ndarray) -> np.ndarray:
        """``(R, G, OC/G, C/G·k·k)`` — the batched GEMM operand."""
        oc, cg, kh, kw = self.w_shape
        return _view(params, self.w_off, self.w_shape).reshape(
            params.shape[0], self.g, oc // self.g, cg * kh * kw
        )

    def forward(self, params: np.ndarray, bufs: np.ndarray, x: np.ndarray,
                mask=None):
        r, b, c, h, w = x.shape
        k, s, p, g = self.k, self.s, self.p, self.g
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        cg = c // g
        m = cg * k * k
        if p > 0:
            xp = scratch_zeros((r, b, c, h + 2 * p, w + 2 * p), x.dtype)
            xp[:, :, :, p : p + h, p : p + w] = x
        else:
            xp = np.ascontiguousarray(x)
        sr, sb, sc, sh, sw = xp.strides
        win = np.lib.stride_tricks.as_strided(
            xp,
            shape=(r, b, g, cg, k, k, oh, ow),
            strides=(sr, sb, sc * cg, sc, sh, sw, sh * s, sw * s),
            writeable=False,
        )
        cols = scratch_empty((r, g, cg, k, k, b, oh, ow), x.dtype)
        np.copyto(cols, win.transpose(0, 2, 3, 4, 5, 1, 6, 7))
        cols = cols.reshape(r, g, m, b * oh * ow)
        self._cols = cols
        self._dims = (r, b, c, h, w, oh, ow)
        # (R, G, OC/G, M) @ (R, G, M, B·L) -> (R, G, OC/G, B·L)
        outf = scratch_empty((r, g, self.oc // g, b * oh * ow), x.dtype)
        np.matmul(self._weight(params), cols, out=outf)
        out = scratch_empty((r, b, self.oc, oh, ow), x.dtype)
        np.copyto(
            out.reshape(r, b, g, self.oc // g, oh, ow),
            outf.reshape(r, g, self.oc // g, b, oh, ow).transpose(
                0, 3, 1, 2, 4, 5
            ),
        )
        if self.b_off is not None:
            out += _view(params, self.b_off, (self.oc,))[:, None, :, None, None]
        return out

    def backward(self, params: np.ndarray, grads: np.ndarray, grad_out):
        r, b, c, h, w, oh, ow = self._dims
        k, s, p, g = self.k, self.s, self.p, self.g
        ocg = self.oc // g
        cg = c // g
        m = cg * k * k
        bl = b * oh * ow
        cols = self._cols
        ggrad = scratch_empty((r, g, ocg, b, oh, ow), grad_out.dtype)
        np.copyto(
            ggrad,
            grad_out.reshape(r, b, g, ocg, oh, ow).transpose(0, 2, 3, 1, 4, 5),
        )
        ggrad = ggrad.reshape(r, g, ocg, bl)
        # dW contracts over B·L in one GEMM per (replica, group)
        dw = scratch_empty((r, g, ocg, m), grad_out.dtype)
        np.matmul(ggrad, cols.swapaxes(-1, -2), out=dw)
        gw = _view(grads, self.w_off, self.w_shape)
        gw += dw.reshape((r,) + self.w_shape)
        if self.b_off is not None:
            gb = _view(grads, self.b_off, (self.oc,))
            gb += grad_out.sum(axis=(1, 3, 4))
        self._cols = None
        if self.skip_dx:
            return None
        dcols = scratch_empty((r, g, m, bl), grad_out.dtype)
        np.matmul(self._weight(params).swapaxes(-1, -2), ggrad, out=dcols)
        # inline batched col2im: scatter-add each kernel tap into the padded
        # input plane (same tap loop as functional.col2im, with the extra
        # replica axis)
        hp, wp = h + 2 * p, w + 2 * p
        dxp = scratch_zeros((r, b, c, hp, wp), grad_out.dtype)
        dxp6 = dxp.reshape(r, b, g, cg, hp, wp)
        dv = dcols.reshape(r, g, cg, k, k, b, oh, ow)
        for i in range(k):
            for j in range(k):
                dxp6[
                    :, :, :, :, i : i + s * oh : s, j : j + s * ow : s
                ] += dv[:, :, :, i, j].transpose(0, 3, 1, 2, 4, 5)
        if p > 0:
            dx = scratch_empty((r, b, c, h, w), grad_out.dtype)
            np.copyto(dx, dxp[:, :, :, p : p + h, p : p + w])
            return dx
        return dxp


class _BatchedBN:
    """Batch norm over ``(R, B, C)`` or ``(R, B, C, H, W)`` activations."""

    def __init__(self, layer, w_off, b_off, rm_off, rv_off, nbt_off, spatial):
        self.eps = layer.eps
        self.momentum = layer.momentum
        self.c = layer.num_features
        self.w_off, self.b_off = w_off, b_off
        self.rm_off, self.rv_off, self.nbt_off = rm_off, rv_off, nbt_off
        #: reduce over batch (+ spatial) axes, keeping (R, C)
        self.axes = (1, 3, 4) if spatial else (1,)
        self.spatial = spatial
        self._cache = None

    def _expand(self, v: np.ndarray) -> np.ndarray:
        return v[:, None, :, None, None] if self.spatial else v[:, None, :]

    def _sample_mask(self, mask: np.ndarray) -> np.ndarray:
        """``(R, B)`` validity mask broadcast over channel (+ spatial) axes."""
        return (
            mask[:, :, None, None, None] if self.spatial else mask[:, :, None]
        )

    @property
    def _sub(self) -> str:
        return "rbchw" if self.spatial else "rbc"

    def forward(self, params: np.ndarray, bufs: np.ndarray, x: np.ndarray,
                mask=None):
        # One-pass moments: Var = E[x²] − E[x]², with the raw sums gathered
        # by einsum so no centered copy of the activations is materialized.
        # The cancellation in the variance costs a few float ulps versus the
        # serial two-pass formula — within the batched path's documented
        # tolerance — and is clamped at zero for near-constant channels.
        sub = self._sub
        if mask is None:
            count = float(np.prod([x.shape[a] for a in self.axes]))
            sum_x = x.sum(axis=self.axes)  # (R, C)
            sum_x2 = np.einsum(f"{sub},{sub}->rc", x, x)
            corr = count / max(count - 1.0, 1.0)
        else:
            # padded rows hold garbage activations — weight them out of the
            # statistics so each replica normalizes over its real samples
            mask = mask.astype(x.dtype, copy=False)
            spatial_n = x[0, 0, 0].size if self.spatial else 1
            count = (mask.sum(axis=1) * spatial_n)[:, None]  # (R, 1)
            sum_x = np.einsum(f"{sub},rb->rc", x, mask)
            sum_x2 = np.einsum(f"{sub},{sub},rb->rc", x, x, mask)
            corr = count / np.maximum(count - 1.0, 1.0)
        mean = sum_x / count
        var = sum_x2 / count - np.square(mean)
        np.maximum(var, 0.0, out=var)
        m = self.momentum
        rm = _view(bufs, self.rm_off, (self.c,))
        rv = _view(bufs, self.rv_off, (self.c,))
        rm *= 1 - m
        rm += m * mean
        rv *= 1 - m
        rv += m * (var * corr)
        _view(bufs, self.nbt_off, (1,))[...] += 1
        inv_std = 1.0 / np.sqrt(var + self.eps)
        # fused affine: out = x·a + shift with a = w·inv_std folded per
        # channel, instead of normalize-then-scale (two fewer passes)
        weight = _view(params, self.w_off, (self.c,))
        a = weight * inv_std
        shift = _view(params, self.b_off, (self.c,)) - mean * a
        out = scratch_empty(x.shape, x.dtype)
        np.multiply(x, self._expand(a), out=out)
        out += self._expand(shift)
        self._cache = (x, mean, inv_std, count, mask)
        return out

    def backward(self, params: np.ndarray, grads: np.ndarray, grad_out):
        x, mean, inv_std, count, mask = self._cache
        sub = self._sub
        # x̂-sums recovered from raw sums: Σg·x̂ = inv·(Σg·x − mean·Σg);
        # x̂ itself is never materialized
        sum_g = grad_out.sum(axis=self.axes)  # (R, C); padded rows are 0
        sum_gx = np.einsum(f"{sub},{sub}->rc", grad_out, x)
        sum_gxhat = inv_std * (sum_gx - mean * sum_g)
        gw = _view(grads, self.w_off, (self.c,))
        gw += sum_gxhat
        gb = _view(grads, self.b_off, (self.c,))
        gb += sum_g
        # dx = inv·w·(g − Σg/n − x̂·Σgx̂/n) rearranged into per-channel
        # affine coefficients of (grad, x): dx = A·grad + B·x + C
        weight = _view(params, self.w_off, (self.c,))
        coef_a = inv_std * weight
        coef_b = -(np.square(inv_std) * weight) * sum_gxhat / count
        coef_c = -coef_a * sum_g / count - mean * coef_b
        dx = scratch_empty(grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, self._expand(coef_a), out=dx)
        tmp = scratch_empty(grad_out.shape, grad_out.dtype)
        np.multiply(x, self._expand(coef_b), out=tmp)
        dx += tmp
        dx += self._expand(coef_c)
        if mask is not None:
            # B·x + C leaks into padded rows; re-mask so zero gradient rows
            # stay zero on the way down
            dx *= self._sample_mask(mask)
        self._cache = None
        return dx


class _BatchedLinear:
    def __init__(self, layer: Linear, w_off: int, b_off: Optional[int]):
        self.w_shape = layer.weight.data.shape  # (OF, F)
        self.w_off = w_off
        self.b_off = b_off
        self._x: Optional[np.ndarray] = None

    def forward(self, params: np.ndarray, bufs: np.ndarray, x: np.ndarray,
                mask=None):
        self._x = x
        w = _view(params, self.w_off, self.w_shape)  # (R, OF, F)
        out = np.matmul(x, w.swapaxes(-1, -2))  # (R, B, OF)
        if self.b_off is not None:
            out += _view(params, self.b_off, (self.w_shape[0],))[:, None, :]
        return out

    def backward(self, params: np.ndarray, grads: np.ndarray, grad_out):
        gw = _view(grads, self.w_off, self.w_shape)
        gw += np.matmul(grad_out.swapaxes(-1, -2), self._x)
        if self.b_off is not None:
            gb = _view(grads, self.b_off, (self.w_shape[0],))
            gb += grad_out.sum(axis=1)
        dx = np.matmul(grad_out, _view(params, self.w_off, self.w_shape))
        self._x = None
        return dx


class _PerSample:
    """Reshape adapter: run a parameterless layer on ``(R·B, ...)``."""

    def __init__(self, layer: Module):
        self.layer = layer

    def forward(self, params: np.ndarray, bufs: np.ndarray, x: np.ndarray,
                mask=None):
        r, b = x.shape[:2]
        self._rb = (r, b)
        y = self.layer.forward(x.reshape((r * b,) + x.shape[2:]))
        return y.reshape((r, b) + y.shape[1:])

    def backward(self, params: np.ndarray, grads: np.ndarray, grad_out):
        r, b = self._rb
        dx = self.layer.backward(
            grad_out.reshape((r * b,) + grad_out.shape[2:])
        )
        return dx.reshape((r, b) + dx.shape[1:])


def _cross_entropy(logits: np.ndarray, targets: np.ndarray, mask=None):
    """Per-replica softmax CE: ``(R,)`` losses + ``(R, B, C)`` gradient.

    With ``mask`` (``(R, B)``, 1.0 for real rows), padded rows contribute
    zero loss and zero gradient, and each replica averages over its own
    valid-row count — matching the serial per-client mean exactly.
    """
    r, b, c = logits.shape
    shifted = logits - logits.max(axis=2, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=2, keepdims=True)
    logp = shifted - np.log(denom)
    y = np.zeros_like(logits)
    np.put_along_axis(y, targets[:, :, None], 1.0, axis=2)
    if mask is None:
        losses = -(y * logp).sum(axis=(1, 2)) / b
        grad = (exp / denom - y) / b
        return losses, grad
    mask = mask.astype(logits.dtype, copy=False)
    y *= mask[:, :, None]
    counts = mask.sum(axis=1)  # (R,)
    losses = -(y * logp).sum(axis=(1, 2)) / counts
    grad = ((exp / denom) * mask[:, :, None] - y) / counts[:, None, None]
    return losses, grad


# -- the trainer --------------------------------------------------------------


class BatchedReplicaTrainer:
    """Runs groups of up to ``R`` clients' local rounds, vectorized.

    Compiled once from a template model (never trained — it only fixes the
    layer chain and the flat column layout); each :meth:`run_group` call
    trains its own ``(R, d)`` state from the given global snapshot.
    """

    def __init__(self, template: Module, d: int, num_buffer: int,
                 use_arena: bool = True):
        self.d = d
        self.num_buffer = num_buffer
        self.ops: List[object] = []
        self.arena = BufferArena() if use_arena else None
        p_off = 0
        b_off = 0
        for layer in _chain_leaves(template):
            if isinstance(layer, Conv2d):
                w_off = p_off
                p_off += layer.weight.data.size
                bias_off = None
                if layer.bias is not None:
                    bias_off = p_off
                    p_off += layer.bias.data.size
                self.ops.append(_BatchedConv(layer, w_off, bias_off))
            elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
                w_off, bias_off = p_off, p_off + layer.weight.data.size
                p_off = bias_off + layer.bias.data.size
                rm, rv, nbt = (
                    b_off,
                    b_off + layer.num_features,
                    b_off + 2 * layer.num_features,
                )
                b_off = nbt + 1
                self.ops.append(
                    _BatchedBN(
                        layer, w_off, bias_off, rm, rv, nbt,
                        spatial=isinstance(layer, BatchNorm2d),
                    )
                )
            elif isinstance(layer, Linear):
                w_off = p_off
                p_off += layer.weight.data.size
                bias_off = None
                if layer.bias is not None:
                    bias_off = p_off
                    p_off += layer.bias.data.size
                self.ops.append(_BatchedLinear(layer, w_off, bias_off))
            elif isinstance(layer, _PER_SAMPLE):
                self.ops.append(_PerSample(layer))
            elif isinstance(layer, Dropout):
                raise UnsupportedModelError(
                    "Dropout draws per-replica RNG the batched path does "
                    "not model"
                )
            else:
                raise UnsupportedModelError(
                    f"layer {type(layer).__name__} has no batched "
                    "implementation"
                )
        if p_off != d or b_off != num_buffer:
            raise UnsupportedModelError(
                f"batched column layout covers {p_off}/{d} parameters and "
                f"{b_off}/{num_buffer} buffer entries — the model's flat "
                "layout does not match its layer chain"
            )
        # the first op's input gradient is discarded by the step loop
        if isinstance(self.ops[0], _BatchedConv):
            self.ops[0].skip_dx = True

    # -- data ------------------------------------------------------------------
    @staticmethod
    def _stack_batches(tasks, clients, rngs, batch_size: int, steps: int):
        """Per-step ``(x, y, mask)`` stacks drawn from each client's stream.

        Clients whose shards differ in size draw differently sized batches
        at the same step; shorter batches are padded to the step's maximum
        with zero rows and ``mask`` (``(R, B)``, 1.0 for real samples) marks
        the valid rows.  Padded rows contribute exact zeros to every
        masked reduction (batch-norm statistics, loss, gradients), so the
        trajectory matches the serial path.  When all batches already
        agree, ``mask`` is ``None`` and the fast unmasked path runs.
        Feature-shape mismatches — e.g. a custom dataset whose samples
        vary in shape — raise :class:`RaggedBatchError` and the caller
        retrains the group per-client.
        """
        per_client: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        for task in tasks:
            rng = rngs(f"client/{task.client_id}/round/{task.round_idx}")
            per_client.append(
                list(
                    clients[task.client_id].batches(
                        batch_size, rng, num_batches=steps
                    )
                )
            )
        stacked = []
        try:
            for step in range(steps):
                sizes = [len(pc[step][1]) for pc in per_client]
                bmax = max(sizes)
                if min(sizes) == bmax:
                    xs = np.stack([pc[step][0] for pc in per_client])
                    ys = np.stack([pc[step][1] for pc in per_client])
                    stacked.append((xs, ys, None))
                    continue
                r = len(per_client)
                x0, y0 = per_client[0][step]
                xs = np.zeros((r, bmax) + x0.shape[1:], dtype=x0.dtype)
                ys = np.zeros((r, bmax), dtype=y0.dtype)
                mask = np.zeros((r, bmax), dtype=np.float64)
                for i, pc in enumerate(per_client):
                    xb, yb = pc[step]
                    nb = len(yb)
                    xs[i, :nb] = xb
                    ys[i, :nb] = yb
                    mask[i, :nb] = 1.0
                stacked.append((xs, ys, mask))
        except ValueError as exc:  # stack/assignment shape mismatch
            raise RaggedBatchError(
                f"clients in one batched group drew incompatible batch "
                f"shapes at step {step}: {exc}"
            ) from exc
        return stacked

    # -- training --------------------------------------------------------------
    def run_group(
        self,
        tasks: Sequence,
        global_params: np.ndarray,
        global_buffers: np.ndarray,
        clients,
        rngs,
        batch_size: int,
        default_steps: int,
        momentum: float,
        weight_decay: float,
    ):
        """Train ``len(tasks)`` clients at once; returns per-task
        ``(delta, buffer_delta, num_samples, mean_loss)`` tuples in task
        order.  All tasks must share the same realized local step count
        and learning rate (the backend groups them so)."""
        r = len(tasks)
        steps = (
            tasks[0].local_steps
            if tasks[0].local_steps is not None
            else default_steps
        )
        lr = tasks[0].lr
        dtype = global_params.dtype
        data = self._stack_batches(tasks, clients, rngs, batch_size, steps)

        params = np.repeat(global_params[None], r, axis=0)
        bufs = (
            np.repeat(global_buffers[None], r, axis=0)
            if self.num_buffer
            else np.zeros((r, 0), dtype=dtype)
        )
        grads = np.zeros_like(params)
        mom = np.zeros_like(params) if momentum else None
        loss_sums = np.zeros(r, dtype=np.float64)

        def one_step(xb, yb, mask):
            h = xb.astype(dtype, copy=False)
            for op in self.ops:
                h = op.forward(params, bufs, h, mask)
            losses, grad = _cross_entropy(h, yb, mask)
            loss_sums[:] += losses
            for op in reversed(self.ops):
                grad = op.backward(params, grads, grad)
            # vectorized SGD over the whole (R, d) state (torch semantics);
            # in-place ops spelled as ufuncs with out= — augmented
            # assignment would rebind the closed-over names
            g = grads
            if weight_decay:
                g = g + weight_decay * params
            if mom is not None:
                np.multiply(mom, momentum, out=mom)
                np.add(mom, g, out=mom)
                g = mom
            np.subtract(params, lr * g, out=params)
            grads.fill(0)

        if self.arena is not None:
            with activate(self.arena):
                for xb, yb, mask in data:
                    one_step(xb, yb, mask)
                    self.arena.reset()
        else:
            for xb, yb, mask in data:
                one_step(xb, yb, mask)

        out = []
        for i, task in enumerate(tasks):
            delta = params[i] - global_params
            buffer_delta = (
                bufs[i] - global_buffers
                if self.num_buffer
                else np.zeros(0, dtype=dtype)
            )
            out.append(
                (
                    delta,
                    buffer_delta,
                    len(clients[task.client_id]),
                    float(loss_sums[i] / steps),
                )
            )
        return out
