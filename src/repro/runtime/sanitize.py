"""Runtime ownership/race sanitizer for the backend hot paths.

The arena and the process backend's zero-copy result ring both rely on
*epoch discipline* instead of per-buffer reference counting: every buffer
handed out is implicitly reclaimed at a barrier (``BufferArena.reset``
between local SGD steps; the ring-epoch bump at the next ``run_clients``
dispatch), and the caller promises not to touch it afterwards.  That
promise is cheap to break silently — a leaked scratch view or an
un-``detach()``-ed ring result reads recycled memory and produces wrong
numbers, not a crash.

This module makes the promise checkable.  With sanitize mode on
(``RunConfig.sanitize=True`` or ``REPRO_SANITIZE=1`` in the environment):

* every buffer a :class:`~repro.runtime.arena.BufferArena` hands out is
  wrapped in a :class:`GuardedView` carrying an :class:`OwnershipTag`
  (owning host, epoch at take time, owner thread), and every element
  access / ufunc application re-validates the tag — touching scratch
  after ``reset()`` or from a foreign thread raises
  :class:`SanitizerError` at the faulting line;
* the process backend stamps each result-ring slot with the dispatch
  epoch that claimed it (:func:`checked_slot_claim` — a double claim
  within one epoch raises in the worker) and wraps the parent-side ring
  views in guards, so a previous dispatch's result touched after the
  ring was reclaimed raises instead of silently reading the next
  round's deltas.

Guards are *lifetime-scoped to the borrowed memory*: ``__array_finalize__``
propagates the tag to views (``base is not None``) but drops it from
copies, so ``ClientResult.detach()`` and any fancy-indexed or computed
result own their memory unguarded — exactly the values that may legally
outlive the epoch.

The mode is a debugging aid with measurable overhead (every ufunc pays a
tag check), so it defaults off and is asserted off in the benchmark
harness.

>>> import numpy as np
>>> class Host:
...     sanitize_epoch = 0
>>> host = Host()
>>> buf = guard(np.zeros(3), OwnershipTag(host, 0, None, "demo"))
>>> buf[0] = 1.0          # epoch matches: fine
>>> host.sanitize_epoch += 1
>>> buf[0]                # stale epoch: flagged
Traceback (most recent call last):
    ...
repro.runtime.sanitize.SanitizerError: demo: buffer taken in epoch 0 \
touched in epoch 1 (use after reset/reclaim)
>>> buf2 = guard(np.zeros(3), OwnershipTag(host, 1, None, "demo"))
>>> owned = buf2.copy()   # copies own their memory: guard dropped
>>> host.sanitize_epoch += 1
>>> float(owned[0])
0.0
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = [
    "SanitizerError",
    "OwnershipTag",
    "GuardedView",
    "enabled",
    "guard",
    "checked_slot_claim",
]


class SanitizerError(RuntimeError):
    """An ownership or lifetime invariant of a borrowed buffer was broken."""


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set truthy in the environment."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@dataclass(frozen=True)
class OwnershipTag:
    """Who owns a borrowed buffer, and for how long.

    Parameters
    ----------
    host:
        The lender — anything with a ``sanitize_epoch`` attribute that it
        bumps when it reclaims outstanding buffers (the arena on
        ``reset()``; the process backend on each dispatch).
    epoch:
        ``host.sanitize_epoch`` at hand-out time.
    owner_thread:
        ``threading.get_ident()`` of the borrower, or ``None`` to skip
        the thread check (ring results are legally consumed by whichever
        thread drains the dispatch).
    label:
        Human-readable buffer description for the error message.
    """

    host: Any
    epoch: int
    owner_thread: Optional[int]
    label: str

    def check(self) -> None:
        current = self.host.sanitize_epoch
        if current != self.epoch:
            raise SanitizerError(
                f"{self.label}: buffer taken in epoch {self.epoch} touched "
                f"in epoch {current} (use after reset/reclaim)"
            )
        if (
            self.owner_thread is not None
            and threading.get_ident() != self.owner_thread
        ):
            raise SanitizerError(
                f"{self.label}: buffer owned by thread {self.owner_thread} "
                f"touched from thread {threading.get_ident()} (arenas are "
                "private per trainer; cross-thread scratch sharing races "
                "reset())"
            )


class GuardedView(np.ndarray):
    """ndarray view that re-validates an :class:`OwnershipTag` on access.

    Views of a guarded array stay guarded (they alias the borrowed
    memory); copies drop the guard (they own fresh memory).  Ufuncs check
    every guarded operand, then run on the plain underlying arrays, so
    computed results come back as ordinary ndarrays.
    """

    _guard: Optional[OwnershipTag]

    def __array_finalize__(self, obj) -> None:
        if obj is None:  # pragma: no cover - explicit construction only
            self._guard = None
            return
        # a view aliases the borrowed memory and inherits its lifetime; a
        # copy owns its memory and may legally outlive the epoch
        self._guard = (
            getattr(obj, "_guard", None) if self.base is not None else None
        )

    def _check(self) -> None:
        if self._guard is not None:
            self._guard.check()

    # -- element access --------------------------------------------------------
    def __getitem__(self, idx):
        self._check()
        return super().__getitem__(idx)

    def __setitem__(self, idx, value) -> None:
        self._check()
        super().__setitem__(idx, value)

    def fill(self, value) -> None:
        self._check()
        super().fill(value)

    # -- ufunc protocol --------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        stripped = tuple(self._strip(x) for x in inputs)
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(self._strip(x) for x in out)
        result = getattr(ufunc, method)(*stripped, **kwargs)
        if out is None:
            return result
        # hand the original ``out`` objects back so in-place ops (+=, the
        # optimizer's np.add(..., out=param)) keep their guard attached
        if isinstance(result, tuple):
            return tuple(
                o if isinstance(o, GuardedView) else r
                for r, o in zip(result, out)
            )
        return out[0] if isinstance(out[0], GuardedView) else result

    @staticmethod
    def _strip(x):
        if isinstance(x, GuardedView):
            x._check()
            return x.view(np.ndarray)
        return x


def guard(buf: np.ndarray, tag: OwnershipTag) -> np.ndarray:
    """Wrap ``buf`` in a :class:`GuardedView` carrying ``tag``.

    The underlying memory is shared — the lender keeps (and later
    recycles) the raw array; only the borrower sees the guard.
    """
    view = buf.view(GuardedView)
    view._guard = tag
    return view


def checked_slot_claim(slot_epochs, slot: int, epoch: int) -> None:
    """Record a worker's claim of result-ring ``slot`` for dispatch ``epoch``.

    ``slot_epochs`` is the shared per-slot epoch table (one entry per ring
    slot; process backend passes a fork-shared ``multiprocessing`` array).
    Claiming a slot twice in the same epoch means two workers were handed
    the same slot — the cursor protocol is broken — so it raises rather
    than letting one worker's deltas overwrite the other's.

    Callers must invoke this under the same lock that serializes cursor
    claims (the process backend uses the cursor's own lock).
    """
    if slot_epochs[slot] == epoch:
        raise SanitizerError(
            f"result-ring slot {slot} claimed twice in dispatch epoch "
            f"{epoch} — two in-flight results would alias one buffer"
        )
    slot_epochs[slot] = epoch
