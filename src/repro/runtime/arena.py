"""Per-shape buffer arenas for the training hot loop.

Profiling the e2e workload shows the layer stack spends a large share of
its time in the allocator: every local SGD step re-materializes the same
im2col matrices, batch-norm scratch, pooling tap buffers, and optimizer
temporaries, then frees them — at quickstart scale that is thousands of
short-lived multi-megabyte allocations per round.  A :class:`BufferArena`
recycles them: buffers are keyed on ``(shape, dtype)``, handed out
uninitialized (or zero-filled) by :func:`scratch_empty`/:func:`scratch_zeros`,
and reclaimed *en masse* by :meth:`BufferArena.reset` at a point where the
caller knows every outstanding buffer is dead — the
:class:`~repro.fl.client.LocalTrainer` resets once per local step, right
after ``optimizer.step()``, when no layer cache from the step can be read
again.

Ownership model
---------------
The arena is **not** a general allocator: there is no per-buffer ``free``.
``take`` hands out each pooled buffer to exactly one consumer between
resets, ``reset`` returns everything taken since the last reset to the
per-key free lists, and the caller is responsible for placing resets only
at points where no taken buffer can be referenced again.  This epoch
discipline is what makes reuse safe without reference counting.

Thread safety comes from *not sharing*: each trainer owns a private arena
and activates it on the current thread only (:func:`activate` maintains a
``threading.local`` stack).  The thread backend hands replicas (and thus
arenas) to at most one in-flight task at a time, so two concurrent clients
can never draw from the same pool — pinned by
``tests/runtime/test_arena.py``.

When no arena is active, the scratch helpers degrade to plain
``np.empty``/``np.zeros``, so layer code is unconditional and an
``use_arena=False`` run is allocation-for-allocation the seed behavior.
Arena reuse is bit-transparent: every consumer fully overwrites (or asks
for zeros), so arena-on and arena-off runs are bit-identical per seed.

>>> arena = BufferArena()
>>> with activate(arena):
...     a = scratch_zeros((4,), "float64")
...     b = scratch_empty((4,), "float64")
>>> arena.outstanding
2
>>> arena.reset()
>>> with activate(arena):
...     c = scratch_empty((4,), "float64")
>>> c is a or c is b  # recycled, not reallocated
True
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime import sanitize as _sanitize

__all__ = [
    "BufferArena",
    "activate",
    "current_arena",
    "scratch_empty",
    "scratch_zeros",
]


class BufferArena:
    """A pool of reusable numpy buffers keyed on ``(shape, dtype)``.

    Parameters
    ----------
    sanitize:
        Wrap every handed-out buffer in a
        :class:`~repro.runtime.sanitize.GuardedView` that raises
        :class:`~repro.runtime.sanitize.SanitizerError` when the buffer
        is touched after :meth:`reset` or from a thread other than the
        taker's.  ``None`` (the default) follows the ``REPRO_SANITIZE``
        environment gate.
    """

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        self._taken: List[Tuple[Tuple[Tuple[int, ...], np.dtype], np.ndarray]] = []
        #: buffers created because no free one matched (allocation count)
        self.misses = 0
        #: buffers served from a free list (reuse count)
        self.hits = 0
        self.sanitize = (
            _sanitize.enabled() if sanitize is None else bool(sanitize)
        )
        #: reclaim-barrier counter: every reset()/clear() bumps it, which
        #: is what invalidates the OwnershipTags of outstanding guards
        self.sanitize_epoch = 0

    # -- allocation ----------------------------------------------------------
    def take(self, shape, dtype) -> np.ndarray:
        """An **uninitialized** buffer of the given shape/dtype.

        The caller must fully overwrite it before reading.
        """
        key = (tuple(shape), np.dtype(dtype))
        pool = self._free.get(key)
        if pool:
            buf = pool.pop()
            self.hits += 1
        else:
            buf = np.empty(key[0], dtype=key[1])
            self.misses += 1
        self._taken.append((key, buf))
        if self.sanitize:
            # the pool keeps (and recycles) the raw buffer; the borrower
            # only ever sees the guarded view
            return _sanitize.guard(
                buf,
                _sanitize.OwnershipTag(
                    host=self,
                    epoch=self.sanitize_epoch,
                    owner_thread=threading.get_ident(),
                    label=f"arena scratch {key[0]}/{key[1]}",
                ),
            )
        return buf

    def zeros(self, shape, dtype) -> np.ndarray:
        """A zero-filled buffer of the given shape/dtype."""
        buf = self.take(shape, dtype)
        buf.fill(0)
        return buf

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Return every buffer taken since the last reset to the pools.

        Only call at a point where no taken buffer can be read again (the
        trainer calls it between local SGD steps).
        """
        for key, buf in self._taken:
            self._free.setdefault(key, []).append(buf)
        self._taken.clear()
        self.sanitize_epoch += 1

    def clear(self) -> None:
        """Drop all pooled memory (free lists and outstanding records)."""
        self._free.clear()
        self._taken.clear()
        self.sanitize_epoch += 1

    @property
    def outstanding(self) -> int:
        """Buffers handed out since the last reset."""
        return len(self._taken)

    def pooled_bytes(self) -> int:
        """Total bytes currently parked in the free lists."""
        return sum(
            buf.nbytes for pool in self._free.values() for buf in pool
        )


# one active-arena stack per thread: a trainer activates its own arena for
# the duration of a client's local round, so concurrent workers (thread
# backend) each resolve scratch calls to their own private pool
_active = threading.local()


def current_arena() -> BufferArena | None:
    """The arena active on this thread, or ``None``."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(arena: BufferArena):
    """Make ``arena`` the current thread's scratch source for the block."""
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    stack.append(arena)
    try:
        yield arena
    finally:
        stack.pop()


def scratch_empty(shape, dtype) -> np.ndarray:
    """Arena-backed ``np.empty`` (plain allocation when no arena is active).

    The buffer's contents are undefined; callers must fully overwrite.
    """
    arena = current_arena()
    if arena is None:
        return np.empty(shape, dtype=dtype)
    return arena.take(shape, dtype)


def scratch_zeros(shape, dtype) -> np.ndarray:
    """Arena-backed ``np.zeros`` (plain allocation when no arena is active)."""
    arena = current_arena()
    if arena is None:
        return np.zeros(shape, dtype=dtype)
    return arena.zeros(shape, dtype)
