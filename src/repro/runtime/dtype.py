"""Floating-point precision policy for a whole run.

The simulator's seed behavior is float64 everywhere (numpy's default).  The
paper's systems transmit float32 on the wire (see
:mod:`repro.network.encoding`), and single precision is plenty for FL
training, so a run may opt into executing *everything* — model parameters,
activations, gradients, deltas, residuals, aggregation — in float32.  On
memory-bandwidth-bound numpy kernels (im2col convolutions, batch norm,
pooling) this roughly halves the bytes moved per op and doubles SIMD width.

Half precision
--------------
``"float16"`` (IEEE binary16) and ``"bfloat16"`` (needs the optional
``ml_dtypes`` package) extend the same policy to 2-byte floats.  Storage —
parameters, activations, deltas — lives in the half dtype, but any
*accumulation over many small terms* is numerically fragile there (float16
has a 10-bit significand; bfloat16 only 7), so the hot reductions run in
:func:`accumulation_dtype` (float32) and round once at the end:

* server aggregation (``weighted_dense_sum``, GlueFL's shared-mask sum,
  BN-buffer averaging) accumulates in float32 and casts the final update
  back to the run dtype;
* the cross-entropy loss reduces log-probabilities in float32 (the loss
  value itself is a python float).

The tolerance story: per-step client math (conv GEMMs, batch norm) runs
natively in the half dtype, so a float16 run tracks its float32 twin to
roughly the half dtype's epsilon per step (≈1e-3 relative for float16) —
quickstart-scale e2e smoke runs land within a few percent in loss and
accuracy (pinned by ``tests/runtime/test_half_precision.py``).  Half
precision is a speed/memory knob, not a bit-identical mode; golden-pinned
runs stay float64/float32.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "DTYPE_NAMES",
    "HALF_DTYPE_NAMES",
    "resolve_dtype",
    "accumulation_dtype",
    "cast_model_dtype",
]

#: Accepted ``RunConfig.dtype`` spellings.
DTYPE_NAMES = ("float32", "float64", "float16", "bfloat16")

#: The 2-byte members of :data:`DTYPE_NAMES` — runs in these dtypes pin
#: their accumulations to :func:`accumulation_dtype`.
HALF_DTYPE_NAMES = ("float16", "bfloat16")


def _bfloat16_dtype() -> np.dtype:
    """The bfloat16 dtype, gated on the optional ``ml_dtypes`` package."""
    try:
        import ml_dtypes
    except ImportError as exc:  # pragma: no cover - env without ml_dtypes
        raise ValueError(
            "dtype 'bfloat16' requires the optional ml_dtypes package "
            "(numpy has no native bfloat16); install ml_dtypes or use "
            "'float16'"
        ) from exc
    return np.dtype(ml_dtypes.bfloat16)


def resolve_dtype(spec: Union[str, type, np.dtype]) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float32``, ...) to ``np.dtype``.

    Raises ``ValueError`` for anything outside :data:`DTYPE_NAMES` —
    integer dtypes would silently break the training math, and
    ``"bfloat16"`` raises with guidance when ``ml_dtypes`` is missing.
    """
    if isinstance(spec, str) and spec == "bfloat16":
        return _bfloat16_dtype()
    dt = np.dtype(spec)
    if dt in (np.dtype(np.float32), np.dtype(np.float64), np.dtype(np.float16)):
        return dt
    if dt.itemsize == 2 and dt.kind == "V" or dt.name == "bfloat16":
        # an ml_dtypes.bfloat16 instance passed directly
        return dt
    raise ValueError(
        f"unsupported runtime dtype {spec!r}; expected one of {DTYPE_NAMES}"
    )


def accumulation_dtype(dtype: Union[str, type, np.dtype]) -> np.dtype:
    """The dtype long reductions should accumulate in for a given run dtype.

    Two-byte floats lose whole updates to rounding when thousands of small
    terms are summed natively, so they accumulate in float32; float32 and
    float64 accumulate in themselves (keeping those paths bit-identical to
    the seed).

    >>> accumulation_dtype("float16").name
    'float32'
    >>> accumulation_dtype("float64").name
    'float64'
    """
    dt = resolve_dtype(dtype)
    if dt.itemsize <= 2:
        return np.dtype(np.float32)
    return dt


def cast_model_dtype(model, dtype: Union[str, type, np.dtype]):
    """Cast every parameter, gradient, and buffer of ``model`` in place.

    Safety net for models built without dtype threading (e.g. external
    registry entries): guarantees the whole parameter tree matches the run
    policy before a :class:`~repro.nn.flat.FlatParamView` is taken.
    Returns the model for chaining.
    """
    dt = resolve_dtype(dtype)
    for _, p in model.named_parameters():
        if p.data.dtype != dt:
            p.data = np.ascontiguousarray(p.data, dtype=dt)
            p.grad = np.zeros_like(p.data)
    for _, b in model.named_buffers():
        if b.data.dtype != dt:
            b.data = np.ascontiguousarray(b.data, dtype=dt)
    return model
