"""Floating-point precision policy for a whole run.

The simulator's seed behavior is float64 everywhere (numpy's default).  The
paper's systems transmit float32 on the wire (see
:mod:`repro.network.encoding`), and single precision is plenty for FL
training, so a run may opt into executing *everything* — model parameters,
activations, gradients, deltas, residuals, aggregation — in float32.  On
memory-bandwidth-bound numpy kernels (im2col convolutions, batch norm,
pooling) this roughly halves the bytes moved per op and doubles SIMD width.

Only the two IEEE float dtypes are supported; the policy is a run-level
choice, not a per-tensor one.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["DTYPE_NAMES", "resolve_dtype", "cast_model_dtype"]

#: Accepted ``RunConfig.dtype`` spellings.
DTYPE_NAMES = ("float32", "float64")


def resolve_dtype(spec: Union[str, type, np.dtype]) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float32``, ...) to ``np.dtype``.

    Raises ``ValueError`` for anything other than float32/float64 — integer
    or half precision would silently break the training math.
    """
    dt = np.dtype(spec)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"unsupported runtime dtype {spec!r}; expected one of {DTYPE_NAMES}"
        )
    return dt


def cast_model_dtype(model, dtype: Union[str, type, np.dtype]):
    """Cast every parameter, gradient, and buffer of ``model`` in place.

    Safety net for models built without dtype threading (e.g. external
    registry entries): guarantees the whole parameter tree matches the run
    policy before a :class:`~repro.nn.flat.FlatParamView` is taken.
    Returns the model for chaining.
    """
    dt = resolve_dtype(dtype)
    for _, p in model.named_parameters():
        if p.data.dtype != dt:
            p.data = np.ascontiguousarray(p.data, dtype=dt)
            p.grad = np.zeros_like(p.data)
    for _, b in model.named_buffers():
        if b.data.dtype != dt:
            b.data = np.ascontiguousarray(b.data, dtype=dt)
    return model
