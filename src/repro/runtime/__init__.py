"""Runtime policies for the simulator's hot path.

Two orthogonal knobs, both selected through
:class:`~repro.fl.config.RunConfig`:

``execution_backend`` — *how* the round's participants are trained:

* ``"serial"`` (default) — one shared model instance, clients trained one
  after another in the server process (the seed behavior);
* ``"thread"`` — a thread pool with one model replica per worker; numpy
  releases the GIL inside BLAS/einsum kernels, so heavy models overlap;
* ``"process"`` — a fork-based process pool.  The frozen global
  parameters/buffers are shipped **once per round** through POSIX shared
  memory; each worker owns its own model replica and
  :class:`~repro.fl.client.LocalTrainer`, and returns
  ``(client_id, delta, buffer_delta, loss)``.

All three backends produce **bit-identical** training results for the same
seed: each client's mini-batch stream comes from its own named RNG
(``RngFactory(f"client/{cid}/round/{t}")``), so per-client results are
independent of execution order, and the server compresses/aggregates the
returned deltas in the same deterministic order regardless of backend.

``dtype`` — *in what precision* the whole run executes: ``"float64"``
(default, the seed behavior) or ``"float32"``.  The policy is threaded
through model construction (every ``Conv2d``/``Linear``/norm layer),
:class:`~repro.nn.flat.FlatParamView`, local training (inputs are cast once
per batch), the compression strategies and the aggregation path, so a
float32 run never silently up-casts back to float64 in the hot loop.
On memory-bandwidth-bound numpy kernels this alone is a ~1.5–2× speedup.
"""

from repro.runtime.backends import (
    BACKENDS,
    ClientResult,
    ClientTask,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerSpec,
    create_backend,
)
from repro.runtime.dtype import DTYPE_NAMES, cast_model_dtype, resolve_dtype

__all__ = [
    "BACKENDS",
    "ClientResult",
    "ClientTask",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WorkerSpec",
    "create_backend",
    "DTYPE_NAMES",
    "cast_model_dtype",
    "resolve_dtype",
]
