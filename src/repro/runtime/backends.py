"""Pluggable client-execution backends for the round loop.

The FL round is embarrassingly parallel on the client side: every
participant trains from the *same frozen* global parameters with its own
named RNG stream, so client results do not depend on execution order.  A
backend receives the round's :class:`ClientTask` list plus the frozen
``global_params``/``global_buffers`` and returns one :class:`ClientResult`
per task, **in task order** — the server then compresses and aggregates in
that deterministic order, which is what makes every backend bit-identical
to serial execution.

Backends
--------
``serial``
    One shared model instance in the calling process (the seed behavior).
``thread``
    A thread pool over per-worker model replicas.  numpy's BLAS/einsum
    kernels release the GIL, so wall-clock improves on multi-core hosts
    without any serialization cost.
``process``
    A ``fork``-based :class:`multiprocessing.pool.Pool`.  The frozen global
    state is written once per round into a POSIX shared-memory block;
    workers read it zero-copy, train on their own replica, and send back
    only the per-client deltas.
"""

from __future__ import annotations

import os
import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ClientDataset
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.runtime.dtype import cast_model_dtype, resolve_dtype
from repro.runtime import sanitize as _sanitize
from repro.utils.rng import RngFactory

# LocalTrainer is imported lazily inside build_trainer(): repro.fl pulls in
# this module through repro.fl.server, and compression/nn modules reach the
# scratch arena through repro.runtime's package init, so a module-level
# import here would close an import cycle
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.client import LocalTrainer

__all__ = [
    "BACKENDS",
    "ClientTask",
    "ClientResult",
    "WorkerSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "require_fork",
]

BACKENDS = ("serial", "thread", "process")


def require_fork(feature: str) -> None:
    """Raise unless the platform offers the ``fork`` start method.

    Both process pools in the repo — the client-training
    :class:`ProcessBackend` and the shard dispatcher in
    :mod:`repro.sharding.executor` — rely on fork semantics (workers
    inherit read-only parent state by reference instead of pickling it),
    so the capability check lives in one place.
    """
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        raise RuntimeError(
            f"{feature} requires the 'fork' start method (POSIX); "
            "use the 'thread' backend on this platform"
        )


@dataclass(frozen=True)
class ClientTask:
    """One participant's work order for the round."""

    client_id: int
    lr: float
    round_idx: int
    #: partial-work override: run this many local steps instead of the
    #: trainer's configured E (device populations with completeness < 1)
    local_steps: Optional[int] = None


@dataclass
class ClientResult:
    """One participant's training outcome, as returned by a backend.

    The process backend returns ``delta``/``buffer_delta`` as **views into
    a shared-memory result ring** that is reclaimed at the next
    ``run_clients`` call.  Consumers that hold a result across dispatches
    (the async arrival buffer, semi-async stragglers) must call
    :meth:`detach` first; same-round consumption needs no copy.
    """

    client_id: int
    delta: np.ndarray
    buffer_delta: np.ndarray
    num_samples: int
    mean_loss: float

    def detach(self) -> "ClientResult":
        """Copy any borrowed arrays so this result survives the next
        dispatch.  No-op (no copy) for results that already own their
        memory, so callers can detach unconditionally."""
        if self.delta.base is not None:
            self.delta = self.delta.copy()
        if self.buffer_delta.base is not None:
            self.buffer_delta = self.buffer_delta.copy()
        return self


@dataclass
class _SlotResult:
    """Wire format for a zero-copy worker return: everything but the
    arrays, which sit in the worker's claimed ring slot."""

    client_id: int
    slot: int
    num_samples: int
    mean_loss: float


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild the training context.

    The replica's initial weights are irrelevant — every task overwrites
    them from the shipped global state — so replicas are built with a fixed
    throwaway RNG.  Per-client randomness comes from
    ``RngFactory(seed)(f"client/{cid}/round/{t}")``, exactly the stream the
    serial path uses.
    """

    model_name: str
    model_kwargs: Dict[str, Any]
    in_channels: int
    num_classes: int
    image_size: int
    local_steps: int
    batch_size: int
    momentum: float
    weight_decay: float
    seed: int
    clients: List[ClientDataset]
    dtype: str = "float64"
    d: int = 0
    num_buffer: int = 0
    #: recycle per-step scratch through each trainer's private BufferArena
    use_arena: bool = True
    #: runtime ownership sanitizer (repro.runtime.sanitize): guard arena
    #: scratch and the process backend's result ring; False still honors
    #: the REPRO_SANITIZE environment gate downstream
    sanitize: bool = False
    #: cap on results a parallel backend may have outstanding at once
    #: (sizes the process backend's zero-copy result rings); 0 = derive
    #: from the task count per call
    max_in_flight: int = 0
    #: vectorize up to this many clients' local rounds through one batched
    #: replica (thread backend only); 0 disables the batched path
    batch_replicas: int = 0

    def build_trainer(self) -> Tuple[Module, "LocalTrainer"]:
        from repro.fl.client import LocalTrainer

        model = build_model(
            self.model_name,
            in_channels=self.in_channels,
            num_classes=self.num_classes,
            image_size=self.image_size,
            rng=np.random.default_rng(0),
            dtype=resolve_dtype(self.dtype),
            **self.model_kwargs,
        )
        cast_model_dtype(model, self.dtype)
        trainer = LocalTrainer(
            model,
            local_steps=self.local_steps,
            batch_size=self.batch_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            use_arena=self.use_arena,
            # None (not False) keeps the REPRO_SANITIZE env gate live when
            # the config knob is off
            sanitize=True if self.sanitize else None,
        )
        return model, trainer


def _run_one(
    trainer: LocalTrainer,
    rngs: RngFactory,
    clients: Sequence[ClientDataset],
    task: ClientTask,
    global_params: np.ndarray,
    global_buffers: np.ndarray,
) -> ClientResult:
    """Train one client — the shared inner step of every backend."""
    # forward the partial-work override only when set, so stubbed trainers
    # with the classic five-argument signature keep working
    kwargs = (
        {} if task.local_steps is None else {"local_steps": task.local_steps}
    )
    result = trainer.run(
        global_params,
        global_buffers,
        clients[task.client_id],
        task.lr,
        rngs(f"client/{task.client_id}/round/{task.round_idx}"),
        **kwargs,
    )
    return ClientResult(
        client_id=task.client_id,
        delta=result.delta,
        buffer_delta=result.buffer_delta,
        num_samples=result.num_samples,
        mean_loss=result.mean_loss,
    )


class ExecutionBackend:
    """Base class: lifecycle + the per-round dispatch hook."""

    name: str = "base"

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.rngs = RngFactory(spec.seed)

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        """Train every task's client; results are returned in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (pools, shared memory)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Clients trained one after another on a single shared model."""

    name = "serial"

    def __init__(
        self,
        spec: WorkerSpec,
        trainer: Optional[LocalTrainer] = None,
    ):
        super().__init__(spec)
        if trainer is None:
            _, trainer = spec.build_trainer()
        self.trainer = trainer

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        return [
            _run_one(
                self.trainer, self.rngs, self.spec.clients, task,
                global_params, global_buffers,
            )
            for task in tasks
        ]


class ThreadBackend(ExecutionBackend):
    """Thread pool over a set of per-worker model replicas.

    Replicas are handed out through a queue, so at most ``workers`` clients
    train concurrently and no model instance is ever shared between two
    in-flight tasks.

    When ``spec.batch_replicas > 1``, tasks with the same realized
    ``(local_steps, lr)`` are grouped into chunks of up to that many clients
    and each chunk trains vectorized through one
    :class:`~repro.runtime.batched.BatchedReplicaTrainer` (a leading replica
    axis over the whole layer stack).  Unsupported models fall back to the
    per-client path at construction time; differing batch *sizes* within a
    group are padded with masked rows, and only incompatible batch *shapes*
    (heterogeneous sample features) fall back per group at run time.  Either
    way results come back in task order.
    """

    name = "thread"

    def __init__(self, spec: WorkerSpec, workers: Optional[int] = None):
        super().__init__(spec)
        self.workers = max(1, workers or os.cpu_count() or 1)
        self._replicas: "queue.SimpleQueue[LocalTrainer]" = queue.SimpleQueue()
        for _ in range(self.workers):
            _, trainer = spec.build_trainer()
            self._replicas.put(trainer)
        self._batched: Optional["queue.SimpleQueue"] = None
        self.batch_replicas = max(0, int(spec.batch_replicas or 0))
        if self.batch_replicas > 1:
            self._batched = self._build_batched_pool()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-client"
        )

    def _build_batched_pool(self) -> Optional["queue.SimpleQueue"]:
        import warnings

        from repro.nn.flat import FlatParamView
        from repro.runtime.batched import (
            BatchedReplicaTrainer,
            UnsupportedModelError,
        )

        pool: "queue.SimpleQueue[BatchedReplicaTrainer]" = queue.SimpleQueue()
        for i in range(self.workers):
            model, _ = self.spec.build_trainer()
            view = FlatParamView(model)
            try:
                pool.put(
                    BatchedReplicaTrainer(
                        model,
                        view.num_trainable,
                        view.num_buffer,
                        use_arena=self.spec.use_arena,
                    )
                )
            except UnsupportedModelError as exc:
                warnings.warn(
                    f"batch_replicas disabled: {exc}; falling back to "
                    "per-client training",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
        return pool

    def _run_task(
        self,
        task: ClientTask,
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> ClientResult:
        trainer = self._replicas.get()
        try:
            return _run_one(
                trainer, self.rngs, self.spec.clients, task,
                global_params, global_buffers,
            )
        finally:
            self._replicas.put(trainer)

    def _run_group(
        self,
        group: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        from repro.runtime.batched import RaggedBatchError

        trainer = self._batched.get()
        try:
            outs = trainer.run_group(
                group,
                global_params,
                global_buffers,
                self.spec.clients,
                self.rngs,
                self.spec.batch_size,
                self.spec.local_steps,
                self.spec.momentum,
                self.spec.weight_decay,
            )
        except RaggedBatchError:
            # a client in the group yields short batches — the whole group
            # retrains serially (RNG streams are per-call, so no state leaks)
            return [
                self._run_task(task, global_params, global_buffers)
                for task in group
            ]
        finally:
            self._batched.put(trainer)
        return [
            ClientResult(
                client_id=task.client_id,
                delta=delta,
                buffer_delta=buffer_delta,
                num_samples=num_samples,
                mean_loss=mean_loss,
            )
            for task, (delta, buffer_delta, num_samples, mean_loss) in zip(
                group, outs
            )
        ]

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        if self._batched is None:
            futures = [
                self._pool.submit(
                    self._run_task, task, global_params, global_buffers
                )
                for task in tasks
            ]
            return [f.result() for f in futures]
        # group by realized (steps, lr) — differing shard sizes are fine
        # (the batched trainer pads ragged steps with masked rows) — then
        # chunk each group to the replica cap, remembering task order
        grouped: Dict[tuple, List[int]] = {}
        for i, task in enumerate(tasks):
            steps = (
                task.local_steps
                if task.local_steps is not None
                else self.spec.local_steps
            )
            grouped.setdefault((steps, task.lr), []).append(i)
        futures = []
        for indices in grouped.values():
            for start in range(0, len(indices), self.batch_replicas):
                chunk = indices[start : start + self.batch_replicas]
                futures.append(
                    (
                        chunk,
                        self._pool.submit(
                            self._run_group,
                            [tasks[i] for i in chunk],
                            global_params,
                            global_buffers,
                        ),
                    )
                )
        results: List[Optional[ClientResult]] = [None] * len(tasks)
        for chunk, future in futures:
            for i, res in zip(chunk, future.result()):
                results[i] = res
        return results  # type: ignore[return-value]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# -- process backend ----------------------------------------------------------
# Worker-process globals, populated once by the pool initializer (the pool
# is fork-based, so the spec — including the dataset shards — is inherited
# by reference, never pickled).
_worker_ctx: Dict[str, Any] = {}


def _process_worker_init(
    spec: WorkerSpec,
    shm_name: str,
    res_name: Optional[str] = None,
    res_capacity: int = 0,
    res_cursor=None,
    res_slot_epochs=None,
    res_epoch=None,
) -> None:
    from multiprocessing import shared_memory

    # Workers fork from the parent, so they share its resource tracker:
    # attaching here re-registers the same name in the same tracker set
    # (idempotent), and the parent's close()+unlink() cleans up once.
    shm = shared_memory.SharedMemory(name=shm_name)
    dt = resolve_dtype(spec.dtype)
    flat = np.ndarray(spec.d + spec.num_buffer, dtype=dt, buffer=shm.buf)
    _, trainer = spec.build_trainer()
    _worker_ctx.update(
        spec=spec,
        shm=shm,
        params=flat[: spec.d],
        buffers=flat[spec.d :],
        trainer=trainer,
        rngs=RngFactory(spec.seed),
        res_shm=None,
        res_flat=None,
        res_capacity=0,
        res_cursor=None,
        res_slot_epochs=None,
        res_epoch=None,
    )
    if res_name is not None:
        res_shm = shared_memory.SharedMemory(name=res_name)
        stride = spec.d + spec.num_buffer
        _worker_ctx.update(
            res_shm=res_shm,
            res_flat=np.ndarray(res_capacity * stride, dtype=dt, buffer=res_shm.buf),
            res_capacity=res_capacity,
            res_cursor=res_cursor,
            res_slot_epochs=res_slot_epochs,
            res_epoch=res_epoch,
        )


def _process_worker_run(task: ClientTask):
    ctx = _worker_ctx
    result = _run_one(
        ctx["trainer"], ctx["rngs"], ctx["spec"].clients, task,
        ctx["params"], ctx["buffers"],
    )
    cursor = ctx["res_cursor"]
    if cursor is None:
        return result
    # claim one ring slot; a full ring (more outstanding results than
    # max_in_flight budgeted for) degrades to the pickled return path
    with cursor.get_lock():
        slot = cursor.value
        if slot < ctx["res_capacity"]:
            cursor.value = slot + 1
        else:
            slot = -1
        if slot >= 0 and ctx["res_slot_epochs"] is not None:
            # sanitize mode: stamp the claim with the dispatch epoch (still
            # under the cursor lock, which serializes all claims) so a
            # broken cursor protocol — two workers on one slot — raises in
            # the claiming worker instead of silently aliasing deltas
            _sanitize.checked_slot_claim(
                ctx["res_slot_epochs"], slot, ctx["res_epoch"].value
            )
    if slot < 0:
        return result
    spec = ctx["spec"]
    stride = spec.d + spec.num_buffer
    base = slot * stride
    res_flat = ctx["res_flat"]
    res_flat[base : base + spec.d] = result.delta
    if spec.num_buffer:
        res_flat[base + spec.d : base + stride] = result.buffer_delta
    return _SlotResult(
        client_id=result.client_id,
        slot=slot,
        num_samples=result.num_samples,
        mean_loss=result.mean_loss,
    )


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool with shared-memory shipping both ways.

    Per round the server writes ``global_params``/``global_buffers`` once
    into a shared-memory block sized at setup; workers read it zero-copy.
    Results travel the same way: a second shared-memory block holds a ring
    of ``max_in_flight`` slots of ``d + num_buffer`` elements each, workers
    claim slots through a shared cursor and write their deltas in place,
    and only a tiny slot descriptor crosses the pickle channel.  The parent
    hands back :class:`ClientResult` objects whose arrays **view** the ring.

    Ownership handoff: each ``run_clients`` call bumps the ring epoch and
    resets the cursor, reclaiming every slot of the previous dispatch —
    callers that keep results across dispatches must ``detach()`` them
    first.  When a dispatch outgrows the ring, the overflow results fall
    back to the classic pickled return (correct, just slower).
    """

    name = "process"

    def __init__(self, spec: WorkerSpec, workers: Optional[int] = None):
        super().__init__(spec)
        import multiprocessing as mp

        require_fork("execution_backend='process'")
        from multiprocessing import shared_memory

        self.workers = max(1, workers or os.cpu_count() or 1)
        dt = resolve_dtype(spec.dtype)
        self._dtype = dt
        stride = spec.d + spec.num_buffer
        self._stride = stride
        self._shm = None
        self._res_shm = None
        self._pool = None
        self._closed = False
        # everything after the first shm allocation can fail (a second
        # allocation, pool spawn) — unwind what exists so no segment leaks
        try:
            nbytes = max(1, stride * dt.itemsize)
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._flat = np.ndarray(stride, dtype=dt, buffer=self._shm.buf)

            ctx = mp.get_context("fork")
            self._res_capacity = 0
            self._res_cursor = None
            self._epoch = 0
            self._sanitize = spec.sanitize or _sanitize.enabled()
            self._shared_epoch = None
            self._slot_epochs = None
            initargs: tuple = (spec, self._shm.name)
            if stride > 0:
                # ring sized by the scheduler's declared in-flight budget
                # (at least one slot per worker so small direct uses of the
                # backend still ride the zero-copy path)
                self._res_capacity = max(spec.max_in_flight, self.workers)
                self._res_shm = shared_memory.SharedMemory(
                    create=True,
                    size=self._res_capacity * stride * dt.itemsize,
                )
                self._res = np.ndarray(
                    self._res_capacity * stride, dtype=dt,
                    buffer=self._res_shm.buf,
                )
                self._res_cursor = ctx.Value("q", 0)
                initargs = (
                    spec, self._shm.name, self._res_shm.name,
                    self._res_capacity, self._res_cursor,
                )
                if self._sanitize:
                    # lock-free is safe: the parent writes the epoch only
                    # while the pool is idle between map() calls, and the
                    # per-slot claim stamps are serialized by the cursor's
                    # lock in the workers
                    self._shared_epoch = ctx.Value("q", 0, lock=False)
                    self._slot_epochs = ctx.Array(
                        "q", self._res_capacity, lock=False
                    )
                    initargs = initargs + (
                        self._slot_epochs, self._shared_epoch,
                    )
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_process_worker_init,
                initargs=initargs,
            )
        except Exception:
            self._cleanup_shared()
            raise

    @property
    def sanitize_epoch(self) -> int:
        """Current ring epoch — OwnershipTags on ring views check this."""
        return self._epoch

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        spec = self.spec
        self._flat[: spec.d] = global_params
        if spec.num_buffer:
            self._flat[spec.d :] = global_buffers
        if self._res_cursor is not None:
            # new epoch: reclaim the previous dispatch's slots (the pool is
            # idle between map() calls, so no worker races this reset)
            self._epoch += 1
            self._res_cursor.value = 0
            if self._shared_epoch is not None:
                self._shared_epoch.value = self._epoch
        # map() preserves task order, so aggregation order matches serial
        raw = self._pool.map(_process_worker_run, tasks, chunksize=1)
        d, stride = spec.d, self._stride
        out: List[ClientResult] = []
        for r in raw:
            if isinstance(r, _SlotResult):
                base = r.slot * stride
                delta = self._res[base : base + d]
                buffer_delta = self._res[base + d : base + stride]
                if self._sanitize:
                    # epoch-scope the borrowed ring views: a result of this
                    # dispatch touched after the next run_clients reclaims
                    # the ring raises instead of reading the next round's
                    # deltas.  detach() copies drop the guard.
                    tag = _sanitize.OwnershipTag(
                        host=self,
                        epoch=self._epoch,
                        owner_thread=None,
                        label=f"result-ring slot {r.slot}",
                    )
                    delta = _sanitize.guard(delta, tag)
                    buffer_delta = _sanitize.guard(buffer_delta, tag)
                out.append(
                    ClientResult(
                        client_id=r.client_id,
                        delta=delta,
                        buffer_delta=buffer_delta,
                        num_samples=r.num_samples,
                        mean_loss=r.mean_loss,
                    )
                )
            else:
                out.append(r)
        return out

    def _cleanup_shared(self) -> None:
        """Close + unlink both segments; tolerates partially-built state."""
        for attr in ("_flat", "_res"):
            if hasattr(self, attr):
                delattr(self, attr)
        first_error = None
        for shm in (self._shm, self._res_shm):
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
            except Exception as exc:  # pragma: no cover - defensive
                first_error = first_error or exc
        self._shm = None
        self._res_shm = None
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._pool is not None:
                self._pool.close()
                self._pool.join()
        finally:
            # the segments must be unlinked even if the pool teardown blows
            # up (e.g. a worker died mid-task) — leaked /dev/shm blocks
            # outlive the process
            self._cleanup_shared()

    def __del__(self):  # pragma: no cover - belt and suspenders
        try:
            self.close()
        except Exception:
            pass


def create_backend(
    name: str,
    spec: WorkerSpec,
    *,
    trainer: Optional[LocalTrainer] = None,
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """Build the execution backend selected by ``RunConfig.execution_backend``.

    ``trainer`` lets the serial backend reuse the server's existing shared
    model instance instead of building a replica.
    """
    if name == "serial":
        return SerialBackend(spec, trainer=trainer)
    if name == "thread":
        return ThreadBackend(spec, workers=workers)
    if name == "process":
        return ProcessBackend(spec, workers=workers)
    raise ValueError(f"unknown execution backend {name!r}; expected {BACKENDS}")
