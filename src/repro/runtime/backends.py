"""Pluggable client-execution backends for the round loop.

The FL round is embarrassingly parallel on the client side: every
participant trains from the *same frozen* global parameters with its own
named RNG stream, so client results do not depend on execution order.  A
backend receives the round's :class:`ClientTask` list plus the frozen
``global_params``/``global_buffers`` and returns one :class:`ClientResult`
per task, **in task order** — the server then compresses and aggregates in
that deterministic order, which is what makes every backend bit-identical
to serial execution.

Backends
--------
``serial``
    One shared model instance in the calling process (the seed behavior).
``thread``
    A thread pool over per-worker model replicas.  numpy's BLAS/einsum
    kernels release the GIL, so wall-clock improves on multi-core hosts
    without any serialization cost.
``process``
    A ``fork``-based :class:`multiprocessing.pool.Pool`.  The frozen global
    state is written once per round into a POSIX shared-memory block;
    workers read it zero-copy, train on their own replica, and send back
    only the per-client deltas.
"""

from __future__ import annotations

import os
import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ClientDataset
from repro.fl.client import LocalTrainer
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.runtime.dtype import cast_model_dtype, resolve_dtype
from repro.utils.rng import RngFactory

__all__ = [
    "BACKENDS",
    "ClientTask",
    "ClientResult",
    "WorkerSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
]

BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ClientTask:
    """One participant's work order for the round."""

    client_id: int
    lr: float
    round_idx: int
    #: partial-work override: run this many local steps instead of the
    #: trainer's configured E (device populations with completeness < 1)
    local_steps: Optional[int] = None


@dataclass
class ClientResult:
    """One participant's training outcome, as returned by a backend."""

    client_id: int
    delta: np.ndarray
    buffer_delta: np.ndarray
    num_samples: int
    mean_loss: float


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild the training context.

    The replica's initial weights are irrelevant — every task overwrites
    them from the shipped global state — so replicas are built with a fixed
    throwaway RNG.  Per-client randomness comes from
    ``RngFactory(seed)(f"client/{cid}/round/{t}")``, exactly the stream the
    serial path uses.
    """

    model_name: str
    model_kwargs: Dict[str, Any]
    in_channels: int
    num_classes: int
    image_size: int
    local_steps: int
    batch_size: int
    momentum: float
    weight_decay: float
    seed: int
    clients: List[ClientDataset]
    dtype: str = "float64"
    d: int = 0
    num_buffer: int = 0

    def build_trainer(self) -> Tuple[Module, LocalTrainer]:
        model = build_model(
            self.model_name,
            in_channels=self.in_channels,
            num_classes=self.num_classes,
            image_size=self.image_size,
            rng=np.random.default_rng(0),
            dtype=resolve_dtype(self.dtype),
            **self.model_kwargs,
        )
        cast_model_dtype(model, self.dtype)
        trainer = LocalTrainer(
            model,
            local_steps=self.local_steps,
            batch_size=self.batch_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        return model, trainer


def _run_one(
    trainer: LocalTrainer,
    rngs: RngFactory,
    clients: Sequence[ClientDataset],
    task: ClientTask,
    global_params: np.ndarray,
    global_buffers: np.ndarray,
) -> ClientResult:
    """Train one client — the shared inner step of every backend."""
    # forward the partial-work override only when set, so stubbed trainers
    # with the classic five-argument signature keep working
    kwargs = (
        {} if task.local_steps is None else {"local_steps": task.local_steps}
    )
    result = trainer.run(
        global_params,
        global_buffers,
        clients[task.client_id],
        task.lr,
        rngs(f"client/{task.client_id}/round/{task.round_idx}"),
        **kwargs,
    )
    return ClientResult(
        client_id=task.client_id,
        delta=result.delta,
        buffer_delta=result.buffer_delta,
        num_samples=result.num_samples,
        mean_loss=result.mean_loss,
    )


class ExecutionBackend:
    """Base class: lifecycle + the per-round dispatch hook."""

    name: str = "base"

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.rngs = RngFactory(spec.seed)

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        """Train every task's client; results are returned in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (pools, shared memory)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Clients trained one after another on a single shared model."""

    name = "serial"

    def __init__(
        self,
        spec: WorkerSpec,
        trainer: Optional[LocalTrainer] = None,
    ):
        super().__init__(spec)
        if trainer is None:
            _, trainer = spec.build_trainer()
        self.trainer = trainer

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        return [
            _run_one(
                self.trainer, self.rngs, self.spec.clients, task,
                global_params, global_buffers,
            )
            for task in tasks
        ]


class ThreadBackend(ExecutionBackend):
    """Thread pool over a set of per-worker model replicas.

    Replicas are handed out through a queue, so at most ``workers`` clients
    train concurrently and no model instance is ever shared between two
    in-flight tasks.
    """

    name = "thread"

    def __init__(self, spec: WorkerSpec, workers: Optional[int] = None):
        super().__init__(spec)
        self.workers = max(1, workers or os.cpu_count() or 1)
        self._replicas: "queue.SimpleQueue[LocalTrainer]" = queue.SimpleQueue()
        for _ in range(self.workers):
            _, trainer = spec.build_trainer()
            self._replicas.put(trainer)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-client"
        )

    def _run_task(
        self,
        task: ClientTask,
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> ClientResult:
        trainer = self._replicas.get()
        try:
            return _run_one(
                trainer, self.rngs, self.spec.clients, task,
                global_params, global_buffers,
            )
        finally:
            self._replicas.put(trainer)

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        futures = [
            self._pool.submit(self._run_task, task, global_params, global_buffers)
            for task in tasks
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# -- process backend ----------------------------------------------------------
# Worker-process globals, populated once by the pool initializer (the pool
# is fork-based, so the spec — including the dataset shards — is inherited
# by reference, never pickled).
_worker_ctx: Dict[str, Any] = {}


def _process_worker_init(spec: WorkerSpec, shm_name: str) -> None:
    from multiprocessing import shared_memory

    # Workers fork from the parent, so they share its resource tracker:
    # attaching here re-registers the same name in the same tracker set
    # (idempotent), and the parent's close()+unlink() cleans up once.
    shm = shared_memory.SharedMemory(name=shm_name)
    dt = resolve_dtype(spec.dtype)
    flat = np.ndarray(spec.d + spec.num_buffer, dtype=dt, buffer=shm.buf)
    _, trainer = spec.build_trainer()
    _worker_ctx.update(
        spec=spec,
        shm=shm,
        params=flat[: spec.d],
        buffers=flat[spec.d :],
        trainer=trainer,
        rngs=RngFactory(spec.seed),
    )


def _process_worker_run(task: ClientTask) -> ClientResult:
    ctx = _worker_ctx
    return _run_one(
        ctx["trainer"], ctx["rngs"], ctx["spec"].clients, task,
        ctx["params"], ctx["buffers"],
    )


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool with shared-memory parameter shipping.

    Per round the server writes ``global_params``/``global_buffers`` once
    into a shared-memory block sized at setup; workers read it zero-copy.
    Only the tiny :class:`ClientTask` tuples and the per-client deltas cross
    the process boundary.
    """

    name = "process"

    def __init__(self, spec: WorkerSpec, workers: Optional[int] = None):
        super().__init__(spec)
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "the process backend requires the 'fork' start method "
                "(POSIX); use execution_backend='thread' on this platform"
            )
        from multiprocessing import shared_memory

        self.workers = max(1, workers or os.cpu_count() or 1)
        dt = resolve_dtype(spec.dtype)
        nbytes = max(1, (spec.d + spec.num_buffer) * dt.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._flat = np.ndarray(
            spec.d + spec.num_buffer, dtype=dt, buffer=self._shm.buf
        )
        ctx = mp.get_context("fork")
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_process_worker_init,
            initargs=(spec, self._shm.name),
        )
        self._closed = False

    def run_clients(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray,
        global_buffers: np.ndarray,
    ) -> List[ClientResult]:
        spec = self.spec
        self._flat[: spec.d] = global_params
        if spec.num_buffer:
            self._flat[spec.d :] = global_buffers
        # map() preserves task order, so aggregation order matches serial
        return self._pool.map(_process_worker_run, tasks, chunksize=1)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._pool.join()
        del self._flat
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass

    def __del__(self):  # pragma: no cover - belt and suspenders
        try:
            self.close()
        except Exception:
            pass


def create_backend(
    name: str,
    spec: WorkerSpec,
    *,
    trainer: Optional[LocalTrainer] = None,
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """Build the execution backend selected by ``RunConfig.execution_backend``.

    ``trainer`` lets the serial backend reuse the server's existing shared
    model instance instead of building a replica.
    """
    if name == "serial":
        return SerialBackend(spec, trainer=trainer)
    if name == "thread":
        return ThreadBackend(spec, workers=workers)
    if name == "process":
        return ProcessBackend(spec, workers=workers)
    raise ValueError(f"unknown execution backend {name!r}; expected {BACKENDS}")
