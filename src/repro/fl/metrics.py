"""Run metrics: the paper's DV / TV / DT / TT accounting.

Table 2 reports, at the round where the (smoothed) test accuracy first
reaches a target:

* **DV** — cumulative downstream volume,
* **TV** — cumulative total volume (downstream + upstream),
* **DT** — cumulative download time, summing the *slowest participant's*
  download time per round (§5.1 "we pick the slowest client in each round
  and sum up their download time"),
* **TT** — cumulative wall-clock training time.

Accuracy is smoothed over a window of evaluations (the paper averages test
accuracy over 5 rounds) before the target test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RoundRecord", "RunResult", "BandwidthReport"]

GB = 1e9


@dataclass
class RoundRecord:
    """Everything measured in one communication round."""

    round_idx: int
    down_bytes: int
    up_bytes: int
    round_seconds: float
    download_seconds: float
    compute_seconds: float
    upload_seconds: float
    num_candidates: int
    num_participants: int
    mean_stale_fraction: float
    train_loss: float
    accuracy: Optional[float] = None
    #: cumulative simulated wall-clock (seconds) at the end of this round,
    #: read off the scheduler's :class:`~repro.engine.clock.SimClock` —
    #: monotone across records under every scheduler, so time-to-accuracy
    #: is comparable between sync, async, tiered, and overlapped rounds
    wall_clock_s: Optional[float] = None
    #: optional per-candidate ``(client_id, gap_rounds, sync_bytes)`` detail
    #: (gap −1 = first contact); enabled by RunConfig.collect_sync_details
    sync_details: Optional[List[tuple]] = None
    #: async scheduler only: mean staleness τ (global updates between
    #: dispatch and arrival) over the aggregated buffer
    mean_update_staleness: Optional[float] = None
    #: True when the failure-injection scheduler hit this round with a
    #: dropout burst / straggler storm
    injected_failure: bool = False
    #: quorum degradation: how many re-draw waves ran after the cohort
    #: collapsed below ``quorum_fraction · K`` (0 = quorum met first try)
    quorum_redraws: int = 0
    #: the cohort stayed below quorum after every allowed re-draw and the
    #: round degraded to ``skip_empty_rounds`` semantics
    quorum_failed: bool = False
    #: mean realized work fraction over this round's participants (device
    #: populations with partial completeness; None otherwise)
    mean_completeness: Optional[float] = None
    #: cumulative (ε, δ)-DP budget consumed through this round, reported
    #: by the strategy's privacy accountant (None when no accounting is
    #: active — privacy off, zero noise, or the random-mask defense)
    privacy_epsilon_spent: Optional[float] = None


@dataclass
class BandwidthReport:
    """The Table 2 row: volumes (GB) and times (hours) at target accuracy."""

    reached_target: bool
    target_round: Optional[int]
    dv_gb: float
    tv_gb: float
    dt_hours: float
    tt_hours: float
    final_accuracy: float

    def as_row(self, label: str) -> str:
        mark = "" if self.reached_target else "  (target not reached)"
        return (
            f"{label:<18} DV={self.dv_gb:8.3f} GB  TV={self.tv_gb:8.3f} GB  "
            f"DT={self.dt_hours:7.3f} h  TT={self.tt_hours:7.3f} h{mark}"
        )


@dataclass
class RunResult:
    """Accumulated per-round records plus run-level metadata."""

    records: List[RoundRecord] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    @property
    def num_rounds(self) -> int:
        return len(self.records)

    # -- series ---------------------------------------------------------------
    def series(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.records])

    def cumulative_down_bytes(self) -> np.ndarray:
        return np.cumsum(self.series("down_bytes"))

    def cumulative_up_bytes(self) -> np.ndarray:
        return np.cumsum(self.series("up_bytes"))

    def cumulative_seconds(self) -> np.ndarray:
        return np.cumsum(self.series("round_seconds"))

    def cumulative_download_seconds(self) -> np.ndarray:
        return np.cumsum(self.series("download_seconds"))

    def wall_clock_series(self) -> np.ndarray:
        """Cumulative simulated time per record (clock-stamped schedulers);
        falls back to the ``round_seconds`` cumsum for legacy records."""
        stamps = [r.wall_clock_s for r in self.records]
        if any(s is None for s in stamps):
            return self.cumulative_seconds()
        return np.array(stamps)

    def time_to_target_s(
        self, target: float, window: int = 5
    ) -> Optional[float]:
        """Simulated seconds until the smoothed accuracy reaches ``target``
        (the paper's time-to-accuracy axis) — ``None`` if never reached."""
        target_round = self.rounds_to_target(target, window)
        if target_round is None:
            return None
        rounds = self.series("round_idx")
        pos = int(np.searchsorted(rounds, target_round, side="right")) - 1
        return float(self.wall_clock_series()[pos])

    def accuracy_points(self) -> List[tuple]:
        """``(round_idx, accuracy)`` at every evaluated round."""
        return [
            (r.round_idx, r.accuracy)
            for r in self.records
            if r.accuracy is not None
        ]

    def smoothed_accuracy(self, window: int = 5) -> List[tuple]:
        """Moving average over the last ``window`` evaluations."""
        points = self.accuracy_points()
        out = []
        for i in range(len(points)):
            lo = max(0, i - window + 1)
            acc = float(np.mean([a for _, a in points[lo : i + 1]]))
            out.append((points[i][0], acc))
        return out

    def final_accuracy(self, window: int = 5) -> float:
        smoothed = self.smoothed_accuracy(window)
        return smoothed[-1][1] if smoothed else 0.0

    def best_accuracy(self, window: int = 5) -> float:
        smoothed = self.smoothed_accuracy(window)
        return max((a for _, a in smoothed), default=0.0)

    # -- target-accuracy accounting ------------------------------------------------
    def rounds_to_target(
        self, target: float, window: int = 5
    ) -> Optional[int]:
        """First round whose smoothed accuracy reaches ``target`` (or None)."""
        for round_idx, acc in self.smoothed_accuracy(window):
            if acc >= target:
                return round_idx
        return None

    def report(
        self, target_accuracy: Optional[float] = None, window: int = 5
    ) -> BandwidthReport:
        """Cut the cumulative metrics at the target round (Table 2 semantics).

        Without a target (or when it is never reached) the full-run totals
        are reported and flagged.
        """
        if not self.records:
            raise ValueError("empty run")
        target_round = (
            self.rounds_to_target(target_accuracy, window)
            if target_accuracy is not None
            else None
        )
        if target_round is None:
            cut = len(self.records)
            reached = False
        else:
            rounds = self.series("round_idx")
            cut = int(np.searchsorted(rounds, target_round, side="right"))
            reached = True
        down = self.cumulative_down_bytes()[cut - 1]
        up = self.cumulative_up_bytes()[cut - 1]
        dt = self.cumulative_download_seconds()[cut - 1]
        tt = self.cumulative_seconds()[cut - 1]
        return BandwidthReport(
            reached_target=reached,
            target_round=target_round,
            dv_gb=float(down) / GB,
            tv_gb=float(down + up) / GB,
            dt_hours=float(dt) / 3600.0,
            tt_hours=float(tt) / 3600.0,
            final_accuracy=self.final_accuracy(window),
        )

    # -- figure-style series ---------------------------------------------------------
    def accuracy_vs_down_gb(self, window: int = 5) -> List[tuple]:
        """``(cumulative downstream GB, smoothed accuracy)`` pairs — the x/y
        series used by Figs. 5–8, 10, 11."""
        cum = self.cumulative_down_bytes()
        rounds = self.series("round_idx")
        out = []
        for round_idx, acc in self.smoothed_accuracy(window):
            pos = int(np.searchsorted(rounds, round_idx, side="right")) - 1
            out.append((float(cum[pos]) / GB, acc))
        return out
