"""Client sampling: uniform (FedAvg), sticky (GlueFL Alg. 2), Poisson (DP).

A sampler produces a :class:`SampleDraw` per round: *candidate* client ids
(over-committed, §5.6) split into a sticky and a non-sticky bucket with
participation quotas.  The simulator picks the fastest candidates within
each bucket; after the round, :meth:`ClientSampler.complete_round` lets the
sticky sampler rebalance its group (Alg. 2 lines 20–21).

The weight contract
-------------------
Every sampler *owns its unbiasedness correction*: the server asks
:meth:`ClientSampler.aggregation_weights` for the per-participant weights
ν, and the sampler must return weights that make the aggregated update an
unbiased estimator of the full-participation objective ``Σ p_i Δ_i`` under
its own sampling distribution (or document its bias, see
:mod:`repro.fl.extra_samplers`).  The server never special-cases sampler
types — a new sampling policy only has to implement ``draw`` plus
``aggregation_weights`` to plug into every scheduler:

* :class:`UniformSampler` → Eq. 2 FedAvg weights ``(N / K) · p_i``;
* :class:`StickySampler` → Eq. 3 inverse-propensity weights per bucket
  (falling back to Eq. 2 when the sticky bucket is empty);
* norm-aware samplers → Horvitz–Thompson weights ``p_i / π_i`` from their
  own inclusion probabilities π.

``weight_mode="equal"`` in :class:`~repro.fl.config.RunConfig` bypasses
this contract entirely (the Fig. 5 "Equal" ablation).

Samplers that adapt to training signals set ``wants_update_norms`` and
receive :meth:`ClientSampler.observe_update` callbacks — the engine's
compression seam feeds every participant's update norm back after local
training (the *privatized* norm whenever a privacy wrapper is active,
never the raw one; see
:meth:`repro.privacy.strategy.PrivateStrategy.feedback_norm`), in both
the sync and async schedulers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fl.aggregation import fedavg_weights, sticky_weights

__all__ = [
    "SampleDraw",
    "ClientSampler",
    "UniformSampler",
    "PoissonSampler",
    "StickySampler",
]


@dataclass
class SampleDraw:
    """One round's candidate sets and quotas.

    ``sticky``/``nonsticky`` are candidate ids (already over-committed);
    the quotas say how many from each bucket actually aggregate.
    """

    sticky: np.ndarray
    nonsticky: np.ndarray
    quota_sticky: int
    quota_nonsticky: int

    @property
    def candidates(self) -> np.ndarray:
        return np.concatenate([self.sticky, self.nonsticky])

    @property
    def quota_total(self) -> int:
        return self.quota_sticky + self.quota_nonsticky


class ClientSampler:
    """Base sampler interface.

    Subclasses implement :meth:`draw`; policies whose sampling distribution
    is not uniform must also override :meth:`aggregation_weights` (see the
    module docs for the weight contract).  Samplers that adapt to observed
    update magnitudes set :attr:`wants_update_norms` and override
    :meth:`observe_update`.
    """

    #: set True on samplers that consume per-client update-norm feedback;
    #: the engine then calls :meth:`observe_update` for every participant
    #: after local training (sync and async schedulers alike)
    wants_update_norms: bool = False

    #: set False on samplers whose policy only acts through per-round
    #: ``draw`` calls (which the async scheduler never makes — it
    #: dispatches via :meth:`sample_replacements` instead); the config
    #: rejects such samplers under ``scheduler="async"`` rather than
    #: silently ignoring their policy
    supports_async: bool = True

    #: set True on samplers that implement :meth:`draw_pool` — the
    #: O(idle) draw path an event-driven population offers via
    #: :class:`~repro.population.population.IdlePool` when
    #: ``RunConfig.population_scalable_sampling`` is on.  The config
    #: rejects the knob for samplers that leave this False (their policy
    #: needs a dense availability mask)
    supports_pool_draw: bool = False

    def __init__(self, num_to_sample: int):
        if num_to_sample <= 0:
            raise ValueError("num_to_sample must be positive")
        self.k = num_to_sample
        self.num_clients = 0

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        if num_clients < self.k:
            raise ValueError(
                f"cannot sample {self.k} of {num_clients} clients"
            )
        self.num_clients = num_clients
        self._rng = rng

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        raise NotImplementedError

    def complete_round(
        self, sticky_used: np.ndarray, nonsticky_used: np.ndarray
    ) -> None:
        """Notify the sampler which candidates actually participated."""

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Unbiased aggregation weights ``(ν_s, ν_r)`` for this sampler's draw.

        ``p`` are the data weights (shard sizes normalized to 1); the ids
        are the round's *actual* participants split into the same buckets
        the draw produced.  The default is Eq. 2's FedAvg correction
        ``(N / K) · p_i`` over the non-sticky bucket — correct for any
        sampler that draws uniformly without replacement and leaves the
        sticky bucket empty.

        >>> import numpy as np
        >>> sampler = UniformSampler(2)
        >>> sampler.setup(4, np.random.default_rng(0))
        >>> p = np.full(4, 0.25)
        >>> none, nu = sampler.aggregation_weights(
        ...     p, np.empty(0, np.int64), np.array([1, 3]))
        >>> nu.tolist()                     # (N / K) · p_i = (4 / 2) · 0.25
        [0.5, 0.5]
        """
        return np.empty(0), fedavg_weights(p, nonsticky_ids, self.num_clients)

    def observe_update(self, client_id: int, norm: float) -> None:
        """Feedback hook: the norm of ``client_id``'s raw local update.

        Called by the engine for every aggregated participant when
        :attr:`wants_update_norms` is set; the base sampler ignores it.
        """

    def dp_sample_rate(self, num_clients: int, overcommit: float) -> float:
        """Per-round inclusion probability the privacy accountant may use.

        The accountant's amplification bound (the Mironov et al.
        sampled-Gaussian RDP bound) is proved for **Poisson** subsampling:
        each client included independently with probability ≤ q.  The base
        answer is the conservative **1.0** — no amplification claimed —
        because no other draw shape qualifies: sticky groups and
        norm/utility policies give some clients a history-correlated
        inclusion probability, and even uniform fixed-size sampling
        without replacement is a different scheme whose RDP the Poisson
        bound does not upper-bound.  Only a sampler whose draw *is*
        independent per-client Bernoulli overrides this (see
        :class:`PoissonSampler`).
        """
        return 1.0

    def replacement_scores(self, pool: np.ndarray) -> Optional[np.ndarray]:
        """Optional per-client scores biasing async replacement dispatch.

        ``None`` (the default) means uniform dispatch over the pool;
        norm-aware samplers return their estimates so in-flight slots go
        to the clients expected to contribute most.
        """
        return None

    def sample_replacements(
        self, available: np.ndarray, exclude: np.ndarray, count: int
    ) -> np.ndarray:
        """Draw up to ``count`` fresh clients for an async dispatch wave.

        Over the online pool minus ``exclude`` (in-flight clients),
        without replacement — uniform unless :meth:`replacement_scores`
        biases the draw.  The async scheduler is sampler-agnostic, so
        this serves sticky samplers too (sticky quotas are a
        synchronous-round concept).  Returns fewer than ``count`` ids
        when the pool runs dry.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        pool = np.flatnonzero(available)
        if len(exclude):
            pool = pool[~np.isin(pool, exclude)]
        if len(pool) == 0:
            return np.empty(0, dtype=np.int64)
        take = min(count, len(pool))
        scores = self.replacement_scores(pool)
        probs = None
        if scores is not None:
            total = scores.sum()
            if total > 0:
                probs = scores / total
        return self._rng.choice(
            pool, size=take, replace=False, p=probs
        ).astype(np.int64)

    def draw_pool(
        self, round_idx: int, pool, overcommit: float = 1.0
    ) -> SampleDraw:
        """O(idle) analogue of :meth:`draw` over an ``IdlePool``.

        ``pool`` is the population's maintained idle index
        (:class:`~repro.population.population.IdlePool`); the draw must
        touch only O(k + |pool interactions|) work, never an N-wide mask.
        Note this is a *different RNG stream* than :meth:`draw` — rounds
        sampled through the pool are not bit-identical to mask-based
        rounds, which is why ``population_scalable_sampling`` is opt-in.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support pool draws"
        )

    def sample_replacements_pool(
        self, pool, exclude, count: int
    ) -> np.ndarray:
        """O(count) analogue of :meth:`sample_replacements` over a pool.

        Uniform without replacement over the idle pool minus ``exclude``
        (in-flight clients).  Norm-aware dispatch biasing
        (:meth:`replacement_scores`) is *not* applied on this path — the
        config restricts scalable sampling to samplers whose replacement
        policy is uniform.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        return pool.sample(self._rng, count, exclude=exclude)

    @staticmethod
    def _extras(overcommit: float, k: int) -> int:
        if overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1.0, got {overcommit}")
        # round at 1e-9 first so 0.3 * 10 == 3.0000000000000004 ceils to 3
        return math.ceil(round((overcommit - 1.0) * k, 9))


class UniformSampler(ClientSampler):
    """FedAvg's uniform sampling without replacement.

    Claims no DP amplification (``dp_sample_rate`` stays 1.0): a
    fixed-size draw bounds each client's *marginal* inclusion by
    ``OC·K/N``, but it is not Poisson subsampling — inclusions are
    negatively correlated — and the accountant's Poisson bound being
    monotone in q does not make it an upper bound across sampling
    schemes.  Use :class:`PoissonSampler` when amplification matters.
    """

    supports_pool_draw = True

    def draw_pool(
        self, round_idx: int, pool, overcommit: float = 1.0
    ) -> SampleDraw:
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        if want == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        chosen = pool.sample(self._rng, want)
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=chosen,
            quota_sticky=0,
            quota_nonsticky=min(self.k, want),
        )

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        if want == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        chosen = self._rng.choice(pool, size=want, replace=False)
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=chosen.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, want),
        )


class PoissonSampler(ClientSampler):
    """Poisson (independent per-client Bernoulli) sampling — the DP sampler.

    Every available client joins the round's candidate set independently
    with probability ``q = min(1, OC·K/N)``; the round aggregates the
    fastest ``min(K, |drawn|)`` of them.  Unlike the fixed-size samplers
    the cohort size varies round to round and can come up *empty* — set
    ``skip_empty_rounds=True`` on small federations.

    This is the only built-in sampler whose :meth:`dp_sample_rate` claims
    subsampling amplification, because its draw is exactly the scheme the
    accountant's sampled-Gaussian RDP bound is proved for.  A client's
    inclusion in the *aggregated* set is Bernoulli with probability
    ``q·s_i ≤ q``, where ``s_i`` (online, survives, fast enough) is
    data-independent, so the rate-``q`` Poisson bound upper-bounds the
    release.

    Aggregation uses the inherited Eq. 2 correction ``(N/K)·p_i`` — the
    Horvitz–Thompson weight at the expected participation rate ``K/N``.
    Like the other samplers' corrections it treats over-commitment and
    speed selection as second-order (see
    :mod:`repro.fl.extra_samplers` for the bias discussion).
    """

    #: Poisson's policy lives entirely in per-round draw() calls, which
    #: the async scheduler never makes (it dispatches replacements
    #: continuously) — the config rejects the pairing
    supports_async = False

    def dp_sample_rate(self, num_clients: int, overcommit: float) -> float:
        """The genuine Poisson candidate rate ``q = min(1, OC·K/N)``."""
        return min(1.0, overcommit * self.k / num_clients)

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        if overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1.0, got {overcommit}")
        pool = np.flatnonzero(available)
        if len(pool) == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        rate = self.dp_sample_rate(self.num_clients, overcommit)
        drawn = pool[self._rng.random(len(pool)) < rate]
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=drawn.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, len(drawn)),
        )


class StickySampler(ClientSampler):
    """GlueFL sticky sampling (Algorithm 2).

    Parameters
    ----------
    num_to_sample:
        K — total clients aggregated per round.
    group_size:
        S — sticky-group size (paper default ``4K``).
    sticky_count:
        C — how many of the K come from the sticky group (paper ``4K/5``).
    oc_sticky_share:
        Fraction of over-commitment extras drawn from the sticky group;
        ``None`` uses the paper's default of ``C/K`` (§5.6 evaluates 10%,
        30%, 50% alternatives in Table 3a).
    """

    supports_pool_draw = True

    def __init__(
        self,
        num_to_sample: int,
        group_size: int,
        sticky_count: int,
        oc_sticky_share: Optional[float] = None,
    ):
        super().__init__(num_to_sample)
        if not 0 < sticky_count <= num_to_sample:
            raise ValueError(
                f"need 0 < C <= K, got C={sticky_count}, K={num_to_sample}"
            )
        if group_size < sticky_count:
            raise ValueError(
                f"sticky group (S={group_size}) smaller than C={sticky_count}"
            )
        if oc_sticky_share is not None and not 0.0 <= oc_sticky_share <= 1.0:
            raise ValueError("oc_sticky_share must be in [0, 1]")
        self.group_size = group_size
        self.sticky_count = sticky_count
        self.oc_sticky_share = oc_sticky_share
        self.sticky_group: np.ndarray = np.empty(0, dtype=np.int64)

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        super().setup(num_clients, rng)
        if num_clients <= self.group_size:
            raise ValueError(
                f"sticky group S={self.group_size} must be smaller than "
                f"the federation (N={num_clients})"
            )
        self.sticky_group = rng.choice(
            num_clients, size=self.group_size, replace=False
        ).astype(np.int64)

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        in_sticky = np.zeros(self.num_clients, dtype=bool)
        in_sticky[self.sticky_group] = True
        sticky_pool = np.flatnonzero(available & in_sticky)
        nonsticky_pool = np.flatnonzero(available & ~in_sticky)

        share = (
            self.oc_sticky_share
            if self.oc_sticky_share is not None
            else self.sticky_count / self.k
        )
        extras = self._extras(overcommit, self.k)
        extra_sticky = int(round(extras * share))
        extra_non = extras - extra_sticky

        want_sticky = min(self.sticky_count + extra_sticky, len(sticky_pool))
        quota_sticky = min(self.sticky_count, want_sticky)
        # if the sticky pool falls short, refill the round from non-sticky
        want_non = min(
            self.k - quota_sticky + extra_non, len(nonsticky_pool)
        )
        sticky = self._rng.choice(sticky_pool, size=want_sticky, replace=False)
        nonsticky = self._rng.choice(nonsticky_pool, size=want_non, replace=False)
        quota_non = min(self.k - quota_sticky, want_non)
        return SampleDraw(
            sticky=sticky.astype(np.int64),
            nonsticky=nonsticky.astype(np.int64),
            quota_sticky=quota_sticky,
            quota_nonsticky=quota_non,
        )

    def draw_pool(
        self, round_idx: int, pool, overcommit: float = 1.0
    ) -> SampleDraw:
        """Same quota split as :meth:`draw`, but O(S + k) instead of O(N).

        The sticky bucket is tiny (S clients), so probing the pool for the
        group's idle members is cheap; the non-sticky bucket draws from
        the pool directly with the sticky group excluded.
        """
        sticky_pool = np.sort(
            self.sticky_group[pool.contains(self.sticky_group)]
        )
        share = (
            self.oc_sticky_share
            if self.oc_sticky_share is not None
            else self.sticky_count / self.k
        )
        extras = self._extras(overcommit, self.k)
        extra_sticky = int(round(extras * share))
        extra_non = extras - extra_sticky

        want_sticky = min(self.sticky_count + extra_sticky, len(sticky_pool))
        quota_sticky = min(self.sticky_count, want_sticky)
        nonsticky_eligible = len(pool) - len(sticky_pool)
        want_non = min(
            self.k - quota_sticky + extra_non, nonsticky_eligible
        )
        sticky = self._rng.choice(sticky_pool, size=want_sticky, replace=False)
        nonsticky = pool.sample(self._rng, want_non, exclude=self.sticky_group)
        quota_non = min(self.k - quota_sticky, len(nonsticky))
        return SampleDraw(
            sticky=sticky.astype(np.int64),
            nonsticky=nonsticky,
            quota_sticky=quota_sticky,
            quota_nonsticky=quota_non,
        )

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 3 inverse-propensity weights for the two buckets.

        Theorem 1: ``ν_s = (S / C) · p_i`` over-weighted sticky draws down
        and ``ν_r = ((N − S) / (K − C)) · p_i`` non-sticky draws up make
        the sticky-sampled update unbiased.  When the sticky bucket is
        empty (e.g. the whole group dropped out) the round degenerates to
        a uniform draw and Eq. 2 applies.
        """
        if not len(sticky_ids):
            return super().aggregation_weights(p, sticky_ids, nonsticky_ids)
        return sticky_weights(
            p,
            sticky_ids,
            nonsticky_ids,
            group_size=self.group_size,
            num_clients=self.num_clients,
        )

    def complete_round(
        self, sticky_used: np.ndarray, nonsticky_used: np.ndarray
    ) -> None:
        """Rebalance: swap |R| sticky non-participants for the new R clients.

        Implements Alg. 2 lines 20–21: remove ``|R|`` random clients from
        ``S \\ C`` and admit the non-sticky participants, keeping ``|S|``
        constant.
        """
        newcomers = np.asarray(nonsticky_used, dtype=np.int64)
        if len(newcomers) == 0:
            return
        participated = set(np.asarray(sticky_used).tolist())
        removable = np.array(
            [c for c in self.sticky_group if c not in participated],
            dtype=np.int64,
        )
        n_swap = min(len(newcomers), len(removable))
        to_remove = set(
            self._rng.choice(removable, size=n_swap, replace=False).tolist()
        )
        kept = np.array(
            [c for c in self.sticky_group if c not in to_remove], dtype=np.int64
        )
        self.sticky_group = np.concatenate([kept, newcomers[:n_swap]])

    def is_sticky(self, client_ids: np.ndarray) -> np.ndarray:
        """Boolean: which of ``client_ids`` are currently in the sticky group."""
        membership = np.zeros(self.num_clients, dtype=bool)
        membership[self.sticky_group] = True
        return membership[np.asarray(client_ids)]
