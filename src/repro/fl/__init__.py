"""Federated-learning simulation engine."""

from repro.fl.aggregation import (
    aggregate_buffer_deltas,
    equal_weights,
    fedavg_weights,
    staleness_discounted_weights,
    sticky_weights,
)
from repro.fl.client import LocalResult, LocalTrainer
from repro.fl.config import RunConfig
from repro.fl.metrics import BandwidthReport, RoundRecord, RunResult
from repro.fl.samplers import (
    ClientSampler,
    PoissonSampler,
    SampleDraw,
    StickySampler,
    UniformSampler,
)
from repro.fl.server import FLServer, run_training
from repro.fl.simulator import (
    CandidateTimings,
    ParticipantSelection,
    select_participants,
)
from repro.fl.staleness import StalenessTracker

__all__ = [
    "RunConfig",
    "FLServer",
    "run_training",
    "RunResult",
    "RoundRecord",
    "BandwidthReport",
    "ClientSampler",
    "UniformSampler",
    "PoissonSampler",
    "StickySampler",
    "SampleDraw",
    "StalenessTracker",
    "LocalTrainer",
    "LocalResult",
    "CandidateTimings",
    "ParticipantSelection",
    "select_participants",
    "fedavg_weights",
    "sticky_weights",
    "equal_weights",
    "staleness_discounted_weights",
    "aggregate_buffer_deltas",
]
