"""Run configuration for the FL simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.compression.base import CompressionStrategy
from repro.datasets.base import FederatedDataset
from repro.fl.samplers import ClientSampler
from repro.nn.optim import ExponentialDecay

__all__ = ["RunConfig"]


@dataclass
class RunConfig:
    """Everything needed to launch one training run.

    The defaults follow the paper's §5.1 training parameters: 10 local
    updates, SGD momentum 0.9, exponential LR decay 0.98 every 10 rounds,
    over-commitment 1.3.

    Runtime knobs (see :mod:`repro.runtime`):

    * ``execution_backend`` — how participants are trained each round:
      ``"serial"`` (default), ``"thread"``, or ``"process"``.  All three
      are bit-identical for the same seed; the parallel backends trade
      setup cost for wall-clock on multi-core hosts.
    * ``backend_workers`` — worker count for the parallel backends
      (default: ``os.cpu_count()``).
    * ``dtype`` — ``"float64"`` (default) or ``"float32"``; float32 runs
      the whole hot path (model, training, compression, aggregation) in
      single precision for a large CPU speedup at FL-irrelevant accuracy
      cost.
    * ``shard_count`` / ``shard_backend`` / ``shard_mmap`` — partition
      the server hot path (aggregation sums, top-k selection, mask
      bookkeeping, residual storage) into contiguous coordinate-range
      shards (see :mod:`repro.sharding`).  Bit-identical to the
      unsharded path on and off, so the knobs trade nothing but how the
      work is partitioned, dispatched (``"serial"``/``"thread"``/
      ``"process"``) and stored (``shard_mmap=True`` backs the dense
      accumulators with ``np.memmap`` files).

    Scheduling knobs (see :mod:`repro.engine.schedulers`):

    * ``scheduler`` — the round shape: ``"sync"`` (default, Algorithm 1),
      ``"async"`` (FedBuff-style buffered asynchrony; one round == one
      buffer flush of ``async_buffer_size`` arrivals, weighted by
      ``(1 + τ)^(−async_staleness_alpha)``), ``"failure"`` (sync rounds
      with periodic dropout bursts + straggler storms), ``"semiasync"``
      (FLASH-style tiered rounds: the fast tier aggregates synchronously
      at its deadline, over-committed stragglers fold into later rounds
      with staleness-discounted weights, capped at ``semiasync_max_lag``
      rounds of lag), or ``"overlapped"`` (sync learning dynamics under a
      pipelined clock: round *t+1*'s downloads overlap round *t*'s
      uploads).  Every scheduler runs on the shared
      :class:`~repro.engine.clock.SimClock` and stamps cumulative
      simulated time into ``RoundRecord.wall_clock_s``.
    * ``skip_empty_rounds`` — survive rounds where nobody's update arrives
      by recording a zero-participant round instead of raising.

    Device population (see :mod:`repro.population`):

    * ``population_preset`` — model the federation as a vectorized
      :class:`~repro.population.DeviceStatePopulation` (numpy state
      columns with an idle/working/offline/dropped state machine) driven
      by a scenario trace: ``"none"``, ``"diurnal"``, ``"device-classes"``
      (phone/tablet/silo), or ``"storm"`` (periodic churn bursts).
      ``scheduler="failure"`` auto-builds the ``"storm"`` population from
      the ``failure_*`` knobs.
    * ``population_event_driven`` — tri-state switch for the population's
      event-driven O(active) advance: ``None`` (default) uses it whenever
      the trace supports scheduling, ``True`` requires it, ``False``
      forces the legacy full-column sweep.  Bit-identical either way.
    * ``population_scalable_sampling`` — draw cohorts from the
      population's maintained idle index (O(idle) per draw) instead of
      N-wide availability masks; a different RNG stream, so opt-in.
    * ``residual_max_clients`` — bound the server's per-client residual
      stores to an LRU budget (evicted clients lose only their error
      compensation).
    * ``quorum_fraction`` / ``redraw_max_attempts`` / ``redraw_backoff_s``
      — graceful degradation: when a round's surviving cohort falls below
      ``quorum_fraction · K``, the timing phase re-draws fresh candidates
      up to ``redraw_max_attempts`` times (each wave's round time plus
      ``redraw_backoff_s`` is charged to the simulated clock) before
      falling back to ``skip_empty_rounds`` semantics.

    Sampling policy (see :mod:`repro.fl.samplers` for the weight contract):

    * ``sampler`` — any :class:`~repro.fl.samplers.ClientSampler`.  Each
      sampler owns its aggregation-weight correction, so beyond the
      paper's :class:`~repro.fl.samplers.UniformSampler` (Eq. 2) and
      :class:`~repro.fl.samplers.StickySampler` (Eq. 3), the norm-aware
      :class:`~repro.fl.extra_samplers.OptimalClientSampler`
      (Horvitz–Thompson weights, fed by the engine's update-norm hook)
      and the budget-annealing
      :class:`~repro.fl.extra_samplers.DynamicScheduleSampler` wrapper
      plug in without server changes.
    * ``weight_mode="equal"`` — bypass the sampler's correction with the
      biased ``1/K`` weights of the Fig. 5 "Equal" ablation.

    Privacy (see :mod:`repro.privacy`):

    * ``privacy_mode`` — ``"off"`` (default; the configured strategy runs
      untouched), ``"gaussian"`` (clip each client's update to
      ``privacy_clip_norm`` — required in this mode — add calibrated
      Gaussian noise to the *transmitted* coordinates only, and track the
      spend with an RDP accountant), or ``"random_defense"`` (Kim &
      Park's random gradient masking: zero a random
      ``privacy_defense_fraction`` of each update before compression —
      no ε, no noise, and no clipping unless ``privacy_clip_norm`` is
      set).
    * ``privacy_epsilon`` / ``privacy_delta`` — the total (ε, δ) budget
      for the whole run; the server calibrates the noise multiplier so
      ``rounds`` rounds spend at most ε.  An explicit
      ``privacy_noise_multiplier`` overrides the calibration.
    * Accounting is honest about composition: with noise on, the wrapped
      strategy's client-side error compensation is disabled (residuals
      would breach the clip bound; ``random_defense`` disables it too, so
      masked coordinates are not re-uploaded later), and subsampling
      amplification is only claimed when the sampler's ``dp_sample_rate``
      genuinely bounds per-round inclusion under the *Poisson* scheme the
      accountant's bound is proved for
      (:class:`~repro.fl.samplers.PoissonSampler`; every other built-in
      sampler and the async scheduler account at rate 1.0).
    * Sparsifying strategies whose clients choose their own transmitted
      coordinates (STC, the GlueFL mask) release a data-dependent index
      set that value noise cannot cover, so gaussian noise over them is
      rejected unless ``privacy_values_only=True`` acknowledges (with a
      warning) that the reported ε covers the released values only.
    * Per-round spend lands in
      :attr:`~repro.fl.metrics.RoundRecord.privacy_epsilon_spent`, and
      norm-aware samplers only ever observe privatized update norms.

    >>> RunConfig.__dataclass_fields__["privacy_mode"].default
    'off'
    """

    # workload
    dataset: FederatedDataset
    model_name: str
    strategy: CompressionStrategy
    sampler: ClientSampler
    rounds: int

    # local training (paper §5.1)
    local_steps: int = 10
    batch_size: int = 16
    lr: float = 0.05
    lr_decay: float = 0.98
    lr_decay_every: int = 10
    momentum: float = 0.9
    weight_decay: float = 0.0
    model_kwargs: Dict[str, Any] = field(default_factory=dict)

    # systems environment
    network_profile: str = "ndt"
    #: Calibrated to reproduce the paper's Fig. 9 regimes with our ~100×
    #: smaller stand-in models: on NDT-like end-user links transmission
    #: dominates the round (several × compute), while on 5G/datacenter
    #: links the same compute dominates transmission.  (Wire times shrink
    #: with the model ~100×, so compute must shrink with them.)
    base_step_seconds: float = 0.008
    compute_sigma: float = 0.5
    overcommit: float = 1.3
    mean_on_fraction: float = 0.9
    dropout_prob: float = 0.05
    always_available: bool = False
    #: optional pre-built availability trace (e.g.
    #: :class:`~repro.traces.diurnal.DiurnalAvailabilityTrace`); overrides
    #: the duty-cycle trace built from the fields above
    availability_trace: Optional[Any] = None

    # aggregation (Fig. 5 ablation switch)
    weight_mode: str = "unbiased"  # "unbiased" | "equal"

    # runtime policy (repro.runtime)
    execution_backend: str = "serial"  # "serial" | "thread" | "process"
    backend_workers: Optional[int] = None
    #: "float64" | "float32" | "float16" | "bfloat16" (bfloat16 needs the
    #: optional ml_dtypes package).  Half-precision runs keep aggregation
    #: and loss accumulation in float32 (see repro.runtime.dtype)
    dtype: str = "float64"
    #: recycle per-step training scratch (im2col, norm/pool temporaries,
    #: optimizer updates) through per-trainer buffer arenas; bit-identical
    #: to allocation-per-step, so it defaults on
    use_arena: bool = True
    #: runtime sanitizer (see :mod:`repro.runtime.sanitize`): tag arena
    #: buffers with owner-thread/epoch metadata and the process backend's
    #: result-ring slots with claim/release epochs, and raise
    #: ``SanitizerError`` on cross-thread scratch touches, use of scratch
    #: across an arena ``reset()``, or slot reuse while a result is in
    #: flight.  Debugging aid with measurable overhead, so it defaults
    #: off; ``REPRO_SANITIZE=1`` in the environment also enables it
    sanitize: bool = False
    #: thread backend only: train this many clients' mini-batches through
    #: one vectorized replica with a leading replica axis (see
    #: repro.runtime.batched).  None disables (the default); changes
    #: floating-point op order, so it is off for golden-pinned runs
    batch_replicas: Optional[int] = None

    # sharded server state (repro.sharding)
    #: partition the server hot path into this many contiguous
    #: coordinate-range shards; None (the default) keeps the unsharded
    #: path.  Bit-identical on and off — contiguous shards preserve
    #: per-coordinate operation order and the merged top-k is exact — so
    #: the knob only changes how server work is partitioned/dispatched
    shard_count: Optional[int] = None
    #: per-shard kernel dispatch: "serial" | "thread" | "process" (the
    #: shard analogue of execution_backend; requires shard_count)
    shard_backend: str = "serial"
    #: back the sharded dense accumulators with np.memmap files so the
    #: d-sized aggregation temporaries live out-of-core (requires
    #: shard_count; see repro.sharding.ShardedServerState for the fully
    #: memmapped parameter store)
    shard_mmap: bool = False

    # round scheduling (repro.engine)
    #: round shape: "sync" (Algorithm 1), "async" (FedBuff-style buffered
    #: asynchrony), or "failure" (sync + injected dropout bursts/straggler
    #: storms); see :mod:`repro.engine.schedulers` for semantics
    scheduler: str = "sync"
    #: record a zero-participant RoundRecord and continue instead of
    #: aborting when no participant survives a round
    skip_empty_rounds: bool = False
    #: async: aggregate every M client arrivals
    async_buffer_size: int = 5
    #: async: clients kept in flight (default: the sampler's K)
    async_concurrency: Optional[int] = None
    #: async + semiasync: staleness-discount exponent α in ``(1 + τ)^(−α)``
    async_staleness_alpha: float = 0.5
    #: semiasync: discard straggler arrivals staler than this many rounds
    #: (0 keeps only same-round arrivals)
    semiasync_max_lag: int = 10
    #: failure: inject a burst every Nth round (0 disables).  Round
    #: indices are 1-based, so the first burst lands at round
    #: ``failure_burst_every`` — round 1 is never a burst unless this is 1
    failure_burst_every: int = 5
    #: failure: extra mid-round dropout probability during a burst
    failure_burst_dropout: float = 0.75
    #: failure: fraction of candidates slowed by a straggler storm
    failure_straggler_fraction: float = 0.3
    #: failure: compute-time multiplier for storm-hit candidates
    failure_straggler_slowdown: float = 4.0

    # device population (repro.population)
    #: scenario preset building a vectorized
    #: :class:`~repro.population.DeviceStatePopulation` as the server's
    #: availability model: "none" | "diurnal" | "device-classes" | "storm"
    #: (``scheduler="failure"`` defaults to "storm" automatically)
    population_preset: Optional[str] = None
    #: pre-built :class:`~repro.population.DeviceStatePopulation`;
    #: overrides ``population_preset``
    population: Optional[Any] = None
    #: floor on any trace-assigned per-client completeness (work fraction)
    population_min_completeness: float = 0.25
    #: cap on any trace-assigned compute-slowdown multiplier
    population_max_responsiveness: float = 8.0
    #: rounds a mid-round-dropped client sits out before rejoining the pool
    population_dropped_cooldown: int = 1
    #: tri-state: None (default) advances the population through its event
    #: queue (O(touched clients) per round) whenever the trace's
    #: ``schedule`` hook supports it, sweeping otherwise; True requires
    #: event support (construction fails on traces without it); False
    #: forces the legacy full-column sweep.  Bit-identical either way
    population_event_driven: Optional[bool] = None
    #: sample cohorts from the population's maintained idle index
    #: (:class:`~repro.population.IdlePool`, O(idle) per draw) instead of
    #: building N-wide availability masks.  A *different RNG stream* than
    #: the mask-based draw — cohorts differ for the same seed — so it is
    #: opt-in; requires an event-driven population, a pool-capable
    #: sampler (``supports_pool_draw``), and no ``quorum_fraction``
    population_scalable_sampling: bool = False
    #: bound every per-client residual store the strategy keeps (error
    #: compensation) to an LRU of this many clients; an evicted client
    #: loses only its accumulated compensation (its next update is
    #: uncompensated, never wrong).  None (the default) keeps all N
    residual_max_clients: Optional[int] = None
    #: graceful degradation: minimum surviving cohort, as a fraction of the
    #: sampler's K, below which the timing phase re-draws fresh candidates
    #: (None disables quorum checking).  Sync-shaped schedulers only
    quorum_fraction: Optional[float] = None
    #: quorum: bounded number of re-draw waves before giving up and
    #: degrading to ``skip_empty_rounds`` semantics
    redraw_max_attempts: int = 2
    #: quorum: extra simulated seconds charged to the clock per re-draw
    #: (on top of the failed wave's round time)
    redraw_backoff_s: float = 0.0

    # privacy (repro.privacy)
    #: "off" | "gaussian" | "random_defense"
    privacy_mode: str = "off"
    #: total (ε, δ)-DP budget for the run; the noise multiplier is
    #: calibrated so `rounds` rounds spend at most this (gaussian mode)
    privacy_epsilon: Optional[float] = None
    #: the δ of the (ε, δ) guarantee
    privacy_delta: float = 1e-5
    #: per-client L2 clip bound S (the mechanism's sensitivity); required
    #: for gaussian noise — there is no sensible universal default, S is a
    #: workload property.  None (the default) disables clipping, which is
    #: only legal without noise (random_defense, or an explicit z = 0)
    privacy_clip_norm: Optional[float] = None
    #: explicit noise multiplier z (std = z·S per transmitted coordinate);
    #: overrides the ε-based calibration when set
    privacy_noise_multiplier: Optional[float] = None
    #: random_defense: fraction of coordinates zeroed per client per round;
    #: None (the default) means the mode's default
    #: (``repro.privacy.DEFAULT_DEFENSE_FRACTION``).  Like the other
    #: privacy knobs, setting it under any other mode is rejected — a set
    #: knob that does nothing is a silent non-defense
    privacy_defense_fraction: Optional[float] = None
    #: gaussian only: accept (with a UserWarning) that noising a strategy
    #: with client-chosen transmitted coordinates (STC, GlueFL) yields an
    #: ε covering the released *values* only — the chosen index set is a
    #: data-dependent release the mechanism does not analyze.  Without
    #: this waiver such combinations are rejected
    privacy_values_only: bool = False

    # evaluation
    eval_every: int = 5
    eval_batch: int = 256
    eval_top_k: int = 1
    accuracy_window: int = 5
    target_accuracy: Optional[float] = None
    stop_at_target: bool = False

    # bookkeeping
    seed: int = 0
    count_buffer_sync: bool = True
    log_echo: bool = False
    collect_sync_details: bool = False

    def lr_schedule(self) -> ExponentialDecay:
        return ExponentialDecay(self.lr, self.lr_decay, self.lr_decay_every)

    def validate(self) -> None:
        # the canonical name lists live next to their factories; imported
        # lazily because repro.engine/runtime modules import repro.fl
        # submodules (a module-level import here would cycle)
        from repro.engine.schedulers import SCHEDULERS
        from repro.privacy import PRIVACY_MODES
        from repro.runtime.backends import BACKENDS
        from repro.runtime.dtype import DTYPE_NAMES
        from repro.sharding.executor import SHARD_BACKENDS

        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not self.model_name:
            raise ValueError("model_name must be a non-empty model key")
        if not isinstance(self.model_kwargs, dict):
            raise ValueError("model_kwargs must be a dict")
        # local-training hyperparameters (paper §5.1)
        if self.local_steps <= 0:
            raise ValueError("local_steps must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if self.lr_decay_every <= 0:
            raise ValueError("lr_decay_every must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        # systems environment
        if not self.network_profile:
            raise ValueError("network_profile must be a profile name")
        if self.base_step_seconds <= 0:
            raise ValueError("base_step_seconds must be positive")
        if self.compute_sigma < 0:
            raise ValueError("compute_sigma must be >= 0")
        if self.availability_trace is not None and not hasattr(
            self.availability_trace, "online"
        ):
            raise ValueError(
                "availability_trace must expose online(round_idx) (see "
                "repro.traces.diurnal.DiurnalAvailabilityTrace)"
            )
        # evaluation / stopping
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.eval_batch <= 0:
            raise ValueError("eval_batch must be positive")
        if self.accuracy_window <= 0:
            raise ValueError("accuracy_window must be positive")
        if self.target_accuracy is not None and not (
            0.0 < self.target_accuracy <= 1.0
        ):
            raise ValueError("target_accuracy must be in (0, 1]")
        if self.stop_at_target and self.target_accuracy is None:
            raise ValueError(
                "stop_at_target needs target_accuracy to know when to stop"
            )
        # bookkeeping: the seed and the boolean switches are used as-is in
        # hashed/golden-pinned places, so reject look-alike types early
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an int")
        for flag in (
            "always_available",
            "use_arena",
            "sanitize",
            "shard_mmap",
            "skip_empty_rounds",
            "stop_at_target",
            "count_buffer_sync",
            "log_echo",
            "collect_sync_details",
        ):
            if not isinstance(getattr(self, flag), bool):
                raise ValueError(f"{flag} must be a bool")
        if self.weight_mode not in ("unbiased", "equal"):
            raise ValueError(f"unknown weight_mode {self.weight_mode!r}")
        if self.eval_top_k not in (1, 5):
            raise ValueError("eval_top_k must be 1 or 5")
        if self.overcommit < 1.0:
            raise ValueError("overcommit must be >= 1.0")
        if self.execution_backend not in BACKENDS:
            raise ValueError(
                f"unknown execution_backend {self.execution_backend!r}; "
                f"expected {BACKENDS}"
            )
        if self.backend_workers is not None and self.backend_workers <= 0:
            raise ValueError("backend_workers must be positive")
        if self.dtype not in DTYPE_NAMES:
            raise ValueError(
                f"unknown dtype {self.dtype!r}; expected {DTYPE_NAMES}"
            )
        if self.batch_replicas is not None:
            if self.batch_replicas <= 0:
                raise ValueError("batch_replicas must be positive (or None)")
            if self.execution_backend != "thread":
                raise ValueError(
                    "batch_replicas vectorizes replicas inside one process; "
                    "it requires execution_backend='thread' (got "
                    f"{self.execution_backend!r})"
                )
        if self.shard_count is not None and self.shard_count <= 0:
            raise ValueError("shard_count must be positive (or None)")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard_backend {self.shard_backend!r}; "
                f"expected {SHARD_BACKENDS}"
            )
        if self.shard_count is None:
            stale_shard = []
            if self.shard_backend != "serial":
                stale_shard.append("shard_backend")
            if self.shard_mmap:
                stale_shard.append("shard_mmap")
            if stale_shard:
                raise ValueError(
                    f"{', '.join(stale_shard)} only applies to the sharded "
                    "server path; with shard_count unset it would be "
                    "silently ignored — set shard_count (or unset it)"
                )
        if self.dtype in ("float16", "bfloat16"):
            if self.privacy_mode == "gaussian":
                raise ValueError(
                    "privacy_mode='gaussian' is incompatible with "
                    f"dtype={self.dtype!r}: calibrated noise and the RDP "
                    "accountant assume the mechanism's arithmetic is not "
                    "dominated by quantization error — run the private "
                    "path in float32 or float64"
                )
            if self.batch_replicas is not None:
                raise ValueError(
                    "batch_replicas accumulates many replicas' GEMMs in the "
                    f"run dtype; {self.dtype!r} loses too much precision "
                    "there — combine batched replicas with float32/float64"
                )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected {SCHEDULERS}"
            )
        if (
            self.scheduler in ("async", "semiasync")
            and not self.sampler.supports_async
        ):
            raise ValueError(
                f"sampler {type(self.sampler).__name__} is a sync-only "
                "policy (supports_async=False): the async scheduler never "
                "makes the per-round draw() calls it acts through, and "
                "semiasync folds stale updates across rounds, which its "
                "per-round budget semantics do not account for — the "
                "policy would silently misbehave"
            )
        # same bounds AvailabilityTrace enforces, surfaced before any model
        # or trace construction happens
        if not 0.0 < self.mean_on_fraction <= 1.0:
            raise ValueError("mean_on_fraction must be in (0, 1]")
        if not 0.0 <= self.dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if self.async_buffer_size <= 0:
            raise ValueError("async_buffer_size must be positive")
        if self.async_concurrency is not None and self.async_concurrency <= 0:
            raise ValueError("async_concurrency must be positive")
        if self.async_staleness_alpha < 0:
            raise ValueError("async_staleness_alpha must be non-negative")
        if self.semiasync_max_lag < 0:
            raise ValueError("semiasync_max_lag must be >= 0")
        if self.failure_burst_every < 0:
            raise ValueError("failure_burst_every must be >= 0")
        if not 0.0 <= self.failure_burst_dropout <= 1.0:
            raise ValueError("failure_burst_dropout must be in [0, 1]")
        if not 0.0 <= self.failure_straggler_fraction <= 1.0:
            raise ValueError("failure_straggler_fraction must be in [0, 1]")
        if self.failure_straggler_slowdown < 1.0:
            raise ValueError("failure_straggler_slowdown must be >= 1")
        if self.population_preset is not None:
            from repro.population import POPULATION_PRESETS

            if self.population_preset not in POPULATION_PRESETS:
                raise ValueError(
                    f"unknown population_preset {self.population_preset!r}; "
                    f"expected {POPULATION_PRESETS}"
                )
        if not 0.0 < self.population_min_completeness <= 1.0:
            raise ValueError(
                "population_min_completeness must be in (0, 1]"
            )
        if self.population_max_responsiveness < 1.0:
            raise ValueError("population_max_responsiveness must be >= 1")
        if self.population_dropped_cooldown < 0:
            raise ValueError("population_dropped_cooldown must be >= 0")
        if self.quorum_fraction is not None:
            if not 0.0 < self.quorum_fraction <= 1.0:
                raise ValueError("quorum_fraction must be in (0, 1]")
            if self.scheduler in ("async", "semiasync"):
                raise ValueError(
                    "quorum_fraction is a synchronous-cohort concept; the "
                    f"{self.scheduler!r} scheduler has no per-round cohort "
                    "to re-draw — unset it or use a sync-shaped scheduler"
                )
        if self.redraw_max_attempts < 0:
            raise ValueError("redraw_max_attempts must be >= 0")
        if self.redraw_backoff_s < 0:
            raise ValueError("redraw_backoff_s must be >= 0")
        if self.population_event_driven is not None and not isinstance(
            self.population_event_driven, bool
        ):
            raise ValueError(
                "population_event_driven must be True, False, or None"
            )
        if not isinstance(self.population_scalable_sampling, bool):
            raise ValueError("population_scalable_sampling must be a bool")
        if self.population_scalable_sampling:
            if (
                self.population is None
                and self.population_preset is None
                and self.scheduler != "failure"
            ):
                raise ValueError(
                    "population_scalable_sampling draws from a device "
                    "population's idle index; set population/"
                    "population_preset (or scheduler='failure', which "
                    "auto-builds one)"
                )
            if self.population_event_driven is False:
                raise ValueError(
                    "population_scalable_sampling needs the event-driven "
                    "population (the sweep path does not maintain an idle "
                    "index); unset population_event_driven=False"
                )
            if not getattr(self.sampler, "supports_pool_draw", False):
                raise ValueError(
                    f"sampler {type(self.sampler).__name__} has no O(idle) "
                    "pool draw (supports_pool_draw=False) — its policy "
                    "needs a dense availability mask, which scalable "
                    "sampling exists to avoid"
                )
            if self.quorum_fraction is not None:
                raise ValueError(
                    "quorum_fraction re-draws against a dense availability "
                    "mask snapshot, which scalable sampling never builds — "
                    "set at most one of the two"
                )
        if self.residual_max_clients is not None and (
            not isinstance(self.residual_max_clients, int)
            or isinstance(self.residual_max_clients, bool)
            or self.residual_max_clients < 1
        ):
            raise ValueError("residual_max_clients must be >= 1 (or None)")
        if self.privacy_mode not in PRIVACY_MODES:
            raise ValueError(
                f"unknown privacy_mode {self.privacy_mode!r}; "
                f"expected {PRIVACY_MODES}"
            )
        if self.privacy_epsilon is not None and self.privacy_epsilon <= 0:
            raise ValueError("privacy_epsilon must be positive")
        if not 0.0 < self.privacy_delta < 1.0:
            raise ValueError("privacy_delta must be in (0, 1)")
        if self.privacy_clip_norm is not None and self.privacy_clip_norm <= 0:
            raise ValueError("privacy_clip_norm must be positive (or None)")
        if (
            self.privacy_noise_multiplier is not None
            and self.privacy_noise_multiplier < 0
        ):
            raise ValueError("privacy_noise_multiplier must be non-negative")
        if self.privacy_defense_fraction is not None and not (
            0.0 <= self.privacy_defense_fraction < 1.0
        ):
            raise ValueError("privacy_defense_fraction must be in [0, 1)")
        if (
            self.privacy_defense_fraction is not None
            and self.privacy_mode == "gaussian"
        ):
            raise ValueError(
                "privacy_defense_fraction belongs to "
                "privacy_mode='random_defense'; the gaussian mechanism "
                "masks nothing"
            )
        if self.privacy_mode == "off":
            stale = [
                name
                for name, value in (
                    ("privacy_epsilon", self.privacy_epsilon),
                    ("privacy_clip_norm", self.privacy_clip_norm),
                    ("privacy_noise_multiplier", self.privacy_noise_multiplier),
                    ("privacy_defense_fraction", self.privacy_defense_fraction),
                )
                if value is not None
            ]
            if self.privacy_values_only:
                stale.append("privacy_values_only")
            if stale:
                raise ValueError(
                    f"privacy_mode='off' ignores {', '.join(stale)}; a "
                    "budget without a mode would run non-private silently "
                    "— set privacy_mode='gaussian' (or unset the knobs)"
                )
        if self.privacy_values_only and self.privacy_mode != "gaussian":
            raise ValueError(
                "privacy_values_only qualifies the gaussian mechanism's "
                f"epsilon; it means nothing under "
                f"privacy_mode={self.privacy_mode!r}"
            )
        if self.privacy_mode == "random_defense" and (
            self.privacy_epsilon is not None
            or self.privacy_noise_multiplier is not None
        ):
            raise ValueError(
                "privacy_mode='random_defense' adds no noise and tracks no "
                "epsilon; unset privacy_epsilon/privacy_noise_multiplier "
                "(use privacy_mode='gaussian' for the DP mechanism)"
            )
        if self.privacy_mode == "gaussian":
            if (
                self.privacy_epsilon is None
                and self.privacy_noise_multiplier is None
            ):
                raise ValueError(
                    "privacy_mode='gaussian' needs privacy_epsilon (to "
                    "calibrate noise) or an explicit "
                    "privacy_noise_multiplier"
                )
            if (
                self.privacy_epsilon is not None
                and self.privacy_noise_multiplier is not None
            ):
                raise ValueError(
                    "privacy_epsilon and privacy_noise_multiplier are "
                    "alternative ways to set the noise level; an explicit "
                    "multiplier overrides the calibration, so the epsilon "
                    "budget would be silently ignored — set exactly one"
                )
            noisy = (
                self.privacy_noise_multiplier is None  # ε-calibrated > 0
                or self.privacy_noise_multiplier > 0
            )
            if noisy and self.privacy_clip_norm is None:
                raise ValueError(
                    "gaussian noise requires privacy_clip_norm: the clip "
                    "bound is the mechanism's sensitivity"
                )
            if (
                noisy
                and not self.privacy_values_only
                and getattr(self.strategy, "data_dependent_selection", False)
            ):
                raise ValueError(
                    f"strategy {self.strategy.name!r} transmits "
                    "client-chosen coordinates; gaussian noise covers the "
                    "values but not that data-dependent index release.  "
                    "Set privacy_values_only=True to accept values-only "
                    "accounting, or use a strategy with data-independent "
                    "selection (fedavg, apf)"
                )
        if self.sampler.k > self.dataset.num_clients:
            raise ValueError(
                f"K={self.sampler.k} exceeds federation size "
                f"N={self.dataset.num_clients}"
            )
