"""Per-coordinate staleness tracking — the downstream-bandwidth ledger.

The server remembers, for every model coordinate, the version (update
counter) at which it last changed, and for every client, the version it
last synchronized to.  When a client is contacted, it must download exactly
the coordinates that changed since its last sync (§2.3) — for FedAvg that
is always everything; for masking strategies it is the union of the
per-round masks over the skipped rounds, which is what Fig. 2b measures.

Per-client ``last_sync`` state is lazily materialized
(:class:`~repro.utils.client_state.LazyClientState`): a client that was
never contacted holds no entry and reads as version −1 (must download the
full dense model), so a 10⁶-client run stores sync versions only for the
ever-sampled cohort instead of an N-wide column.
"""

from __future__ import annotations

import numpy as np

from repro.network.encoding import dense_bytes, sparse_bytes, sparse_bytes_many
from repro.utils.client_state import LazyClientState

__all__ = ["StalenessTracker"]


class StalenessTracker:
    """Tracks ``last_modified`` per coordinate and ``last_sync`` per client.

    Version 0 is the initial model; clients that were never contacted
    (no materialized ``last_sync`` entry, read as −1) must download the
    full dense model — their first check-in ships the whole state.
    """

    def __init__(self, d: int, num_clients: int):
        if d <= 0 or num_clients <= 0:
            raise ValueError("d and num_clients must be positive")
        self.d = d
        self.num_clients = num_clients
        self.version = 0
        self.last_modified = np.zeros(d, dtype=np.int64)
        self._last_sync = LazyClientState()

    @property
    def materialized_clients(self) -> int:
        """How many clients hold a ``last_sync`` entry (= ever contacted)."""
        return len(self._last_sync)

    def last_sync_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Vectorized ``last_sync`` reads (−1 = never contacted)."""
        client_ids = np.asarray(client_ids)
        get = self._last_sync.get
        return np.fromiter(
            (get(int(c), -1) for c in client_ids),
            dtype=np.int64,
            count=len(client_ids),
        )

    def record_update(self, changed_idx: np.ndarray) -> int:
        """Advance the model version; ``changed_idx`` now carry it."""
        self.version += 1
        if len(changed_idx):
            self.last_modified[changed_idx] = self.version
        return self.version

    def stale_count(self, client_id: int) -> int:
        """How many coordinates the client must download right now."""
        last = self._last_sync.get(int(client_id), -1)
        if last < 0:
            return self.d
        return int((self.last_modified > last).sum())

    def stale_counts(self, client_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`stale_count` over several clients.

        Uses a version histogram + suffix sum so the cost is
        ``O(d + versions + len(client_ids))`` instead of
        ``O(d · len(client_ids))``.
        """
        client_ids = np.asarray(client_ids)
        hist = np.bincount(self.last_modified, minlength=self.version + 1)
        # changed_after[v] = #coords with last_modified > v
        suffix = np.concatenate([np.cumsum(hist[::-1])[::-1], [0]])
        last = self.last_sync_of(client_ids)
        lookup = suffix[np.minimum(last + 1, self.version + 1)]
        return np.where(last < 0, self.d, lookup).astype(np.int64, copy=False)

    def sync_gaps(self, client_ids: np.ndarray) -> np.ndarray:
        """Versions elapsed since each client's last sync (−1 = never).

        Vectorized source of the ``gap_rounds`` column of
        ``RoundRecord.sync_details``: under the sync scheduler exactly one
        update is applied per round, so the version gap is the round gap.
        """
        last = self.last_sync_of(client_ids)
        return np.where(last < 0, -1, self.version - last).astype(
            np.int64, copy=False
        )

    def stale_positions(self, client_id: int) -> np.ndarray:
        """Exact coordinate set the client must download (diagnostics)."""
        last = self._last_sync.get(int(client_id), -1)
        if last < 0:
            return np.arange(self.d, dtype=np.int64)
        return np.flatnonzero(self.last_modified > last)

    def download_bytes(self, client_id: int) -> int:
        """Wire size of the value sync for one client (no strategy extras)."""
        last = self._last_sync.get(int(client_id), -1)
        if last < 0:
            return dense_bytes(self.d)
        return sparse_bytes(self.stale_count(client_id), self.d)

    def download_bytes_many(self, client_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`download_bytes`."""
        client_ids = np.asarray(client_ids)
        counts = self.stale_counts(client_ids)
        return np.where(
            self.last_sync_of(client_ids) < 0,
            dense_bytes(self.d),
            sparse_bytes_many(counts, self.d),
        ).astype(np.int64, copy=False)

    def mark_synced(self, client_ids: np.ndarray) -> None:
        """Record that these clients now hold the current version."""
        version = self.version
        for cid in np.asarray(client_ids).ravel():
            self._last_sync.set(int(cid), version)

    def mean_staleness_fraction(self, client_ids: np.ndarray) -> float:
        """Average fraction of the model the given clients would download."""
        if len(client_ids) == 0:
            return 0.0
        return float(self.stale_counts(client_ids).mean() / self.d)
