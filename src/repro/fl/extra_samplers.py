"""Additional client samplers from the paper's related-work section (§6).

These are extensions beyond the paper's core contribution, provided so the
library covers the sampling landscape GlueFL is positioned against:

* :class:`MDSampler` — multinomial-distribution sampling (Li et al., 2020a):
  clients drawn *with replacement* proportionally to their importance
  weights ``p_i``; the unbiased correction is a simple ``1/K`` average.
* :class:`OortLikeSampler` — a utility-guided sampler in the spirit of
  Oort (Lai et al., 2021): clients are scored by a blend of statistical
  utility (recent training loss) and system speed, with an
  exploration/exploitation split.

Both plug into the same :class:`~repro.fl.samplers.ClientSampler` interface
as the paper's uniform/sticky samplers; note that the inverse-propensity
weights of Eq. 3 apply only to sticky sampling — these samplers use their
own weight conventions, documented per class.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fl.samplers import ClientSampler, SampleDraw

__all__ = ["MDSampler", "OortLikeSampler"]


class MDSampler(ClientSampler):
    """Multinomial-distribution sampling: draw K clients ∝ p_i, with
    replacement (duplicates collapsed for the simulator; the aggregation
    weight convention for MD sampling is plain 1/K, i.e. ``weight_mode=
    "equal"`` in :class:`~repro.fl.config.RunConfig`)."""

    def __init__(self, num_to_sample: int, p: Optional[np.ndarray] = None):
        super().__init__(num_to_sample)
        self._p = p

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        super().setup(num_clients, rng)
        if self._p is None:
            self._p = np.full(num_clients, 1.0 / num_clients)
        if len(self._p) != num_clients:
            raise ValueError("p must have one entry per client")
        self._p = np.asarray(self._p, dtype=np.float64)
        self._p = self._p / self._p.sum()

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        if len(pool) == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        probs = self._p[pool]
        probs = probs / probs.sum()
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        drawn = self._rng.choice(pool, size=want, replace=True, p=probs)
        unique = np.unique(drawn)
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=unique.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, len(unique)),
        )


class OortLikeSampler(ClientSampler):
    """Utility-guided sampling in the spirit of Oort.

    Each client carries a utility score ``loss_utility × speed_utility``:

    * statistical utility = the client's most recent mean training loss
      (high loss ⇒ more to learn from), defaulting to a high prior so
      unexplored clients get tried;
    * system utility = ``(deadline / round_time)^α`` penalizing slow
      clients, fed back by the server via :meth:`observe_speed`.

    Per round, ``1 − exploration`` of the K slots go to the highest-utility
    known clients and the rest to unexplored ones.  Like MD sampling this
    is *biased* by design; pair it with ``weight_mode="equal"``.
    """

    def __init__(
        self,
        num_to_sample: int,
        exploration: float = 0.2,
        speed_alpha: float = 1.0,
        deadline_seconds: float = 1.0,
    ):
        super().__init__(num_to_sample)
        if not 0.0 <= exploration <= 1.0:
            raise ValueError("exploration must be in [0, 1]")
        self.exploration = exploration
        self.speed_alpha = speed_alpha
        self.deadline_seconds = deadline_seconds
        self._loss: Dict[int, float] = {}
        self._speed: Dict[int, float] = {}

    # -- feedback hooks ------------------------------------------------------
    def observe_loss(self, client_id: int, mean_loss: float) -> None:
        self._loss[int(client_id)] = float(mean_loss)

    def observe_speed(self, client_id: int, round_seconds: float) -> None:
        self._speed[int(client_id)] = float(round_seconds)

    def utility(self, client_id: int) -> float:
        stat = self._loss.get(int(client_id), 10.0)  # optimistic prior
        seconds = self._speed.get(int(client_id))
        if seconds is None or seconds <= 0:
            system = 1.0
        else:
            system = min(1.0, (self.deadline_seconds / seconds)) ** self.speed_alpha
        return stat * system

    # -- sampling --------------------------------------------------------------
    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        if len(pool) == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        explored = np.array([c for c in pool if c in self._loss], dtype=np.int64)
        fresh = np.array([c for c in pool if c not in self._loss], dtype=np.int64)

        n_explore = min(int(round(self.exploration * want)), len(fresh))
        n_exploit = min(want - n_explore, len(explored))
        chosen = []
        if n_exploit > 0:
            utilities = np.array([self.utility(c) for c in explored])
            order = np.argsort(utilities)[::-1]
            chosen.append(explored[order[:n_exploit]])
        remaining = want - n_exploit
        if remaining > 0 and len(fresh):
            take = min(remaining, len(fresh))
            chosen.append(self._rng.choice(fresh, size=take, replace=False))
        elif remaining > 0 and len(explored) > n_exploit:
            # no fresh clients left: backfill with the next-best explored
            utilities = np.array([self.utility(c) for c in explored])
            order = np.argsort(utilities)[::-1]
            extra = explored[order[n_exploit : n_exploit + remaining]]
            chosen.append(extra)
        candidates = (
            np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        )
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=candidates.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, len(candidates)),
        )

    def complete_round(
        self, sticky_used: np.ndarray, nonsticky_used: np.ndarray
    ) -> None:
        # participation itself is recorded through observe_* feedback;
        # nothing structural to rebalance
        return None
