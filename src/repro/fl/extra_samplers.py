"""Additional client samplers from the paper's related-work section (§6).

These are extensions beyond the paper's core contribution, provided so the
library covers the sampling landscape GlueFL is positioned against:

* :class:`MDSampler` — multinomial-distribution sampling (Li et al., 2020a):
  clients drawn *with replacement* proportionally to their importance
  weights ``p_i``; the unbiased correction is a simple ``1/K`` average.
* :class:`OortLikeSampler` — a utility-guided sampler in the spirit of
  Oort (Lai et al., 2021): clients are scored by a blend of statistical
  utility (recent training loss) and system speed, with an
  exploration/exploitation split.
* :class:`OptimalClientSampler` — Optimal Client Sampling (Chen et al.,
  2020): inclusion probabilities proportional to estimated per-client
  update norms (capped at 1, water-filled to an expected budget of K),
  drawn by systematic PPS and corrected by Horvitz–Thompson weights
  ``p_i / π_i``.  Norm estimates come from the engine's update-norm
  feedback hook (:meth:`~repro.fl.samplers.ClientSampler.observe_update`)
  through an :class:`UpdateNormEstimator`.
* :class:`DynamicScheduleSampler` — Dynamic Sampling (Ji et al., 2020): a
  wrapper that anneals the inner sampler's per-round budget K with an
  exponential decay schedule, so early rounds learn from broad
  participation and late rounds spend less bandwidth.

All plug into the :class:`~repro.fl.samplers.ClientSampler` interface and
own their aggregation-weight corrections (see the weight contract in
:mod:`repro.fl.samplers`): MD and Oort return ``1/K`` weights (MD's
correction is exactly that; Oort is biased by design), OCS returns
Horvitz–Thompson weights, and the dynamic wrapper delegates to its inner
sampler.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.fl.aggregation import equal_weights, horvitz_thompson_weights
from repro.fl.samplers import ClientSampler, SampleDraw
from repro.utils.client_state import LazyClientState

__all__ = [
    "MDSampler",
    "OortLikeSampler",
    "UpdateNormEstimator",
    "OptimalClientSampler",
    "DynamicScheduleSampler",
    "capped_proportional_probs",
]


class MDSampler(ClientSampler):
    """Multinomial-distribution sampling: draw K clients ∝ p_i, with
    replacement (duplicates collapsed for the simulator; the aggregation
    weight convention for MD sampling is plain 1/K, i.e. ``weight_mode=
    "equal"`` in :class:`~repro.fl.config.RunConfig`)."""

    def __init__(self, num_to_sample: int, p: Optional[np.ndarray] = None):
        super().__init__(num_to_sample)
        self._p = p

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        super().setup(num_clients, rng)
        if self._p is None:
            self._p = np.full(num_clients, 1.0 / num_clients)
        if len(self._p) != num_clients:
            raise ValueError("p must have one entry per client")
        self._p = np.asarray(self._p, dtype=np.float64)
        self._p = self._p / self._p.sum()

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        if len(pool) == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        probs = self._p[pool]
        probs = probs / probs.sum()
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        drawn = self._rng.choice(pool, size=want, replace=True, p=probs)
        unique = np.unique(drawn)
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=unique.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, len(unique)),
        )

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """MD sampling's correction: draws arrive ∝ p_i, so the unbiased
        estimator of ``Σ p_i Δ_i`` is the plain ``1/K`` average."""
        return np.empty(0), equal_weights(nonsticky_ids)


class OortLikeSampler(ClientSampler):
    """Utility-guided sampling in the spirit of Oort.

    Each client carries a utility score ``loss_utility × speed_utility``:

    * statistical utility = the client's most recent mean training loss
      (high loss ⇒ more to learn from), defaulting to a high prior so
      unexplored clients get tried;
    * system utility = ``(deadline / round_time)^α`` penalizing slow
      clients, fed back by the server via :meth:`observe_speed`.

    Per round, ``1 − exploration`` of the K slots go to the highest-utility
    known clients and the rest to unexplored ones.  Like MD sampling this
    is *biased* by design; pair it with ``weight_mode="equal"``.
    """

    def __init__(
        self,
        num_to_sample: int,
        exploration: float = 0.2,
        speed_alpha: float = 1.0,
        deadline_seconds: float = 1.0,
    ):
        super().__init__(num_to_sample)
        if not 0.0 <= exploration <= 1.0:
            raise ValueError("exploration must be in [0, 1]")
        self.exploration = exploration
        self.speed_alpha = speed_alpha
        self.deadline_seconds = deadline_seconds
        self._loss: Dict[int, float] = {}
        self._speed: Dict[int, float] = {}

    # -- feedback hooks ------------------------------------------------------
    def observe_loss(self, client_id: int, mean_loss: float) -> None:
        self._loss[int(client_id)] = float(mean_loss)

    def observe_speed(self, client_id: int, round_seconds: float) -> None:
        self._speed[int(client_id)] = float(round_seconds)

    def utility(self, client_id: int) -> float:
        stat = self._loss.get(int(client_id), 10.0)  # optimistic prior
        seconds = self._speed.get(int(client_id))
        if seconds is None or seconds <= 0:
            system = 1.0
        else:
            system = min(1.0, (self.deadline_seconds / seconds)) ** self.speed_alpha
        return stat * system

    # -- sampling --------------------------------------------------------------
    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        if len(pool) == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        explored = np.array([c for c in pool if c in self._loss], dtype=np.int64)
        fresh = np.array([c for c in pool if c not in self._loss], dtype=np.int64)

        n_explore = min(int(round(self.exploration * want)), len(fresh))
        n_exploit = min(want - n_explore, len(explored))
        chosen = []
        if n_exploit > 0:
            utilities = np.array([self.utility(c) for c in explored])
            order = np.argsort(utilities)[::-1]
            chosen.append(explored[order[:n_exploit]])
        remaining = want - n_exploit
        if remaining > 0 and len(fresh):
            take = min(remaining, len(fresh))
            chosen.append(self._rng.choice(fresh, size=take, replace=False))
        elif remaining > 0 and len(explored) > n_exploit:
            # no fresh clients left: backfill with the next-best explored
            utilities = np.array([self.utility(c) for c in explored])
            order = np.argsort(utilities)[::-1]
            extra = explored[order[n_exploit : n_exploit + remaining]]
            chosen.append(extra)
        candidates = (
            np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        )
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=candidates.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, len(candidates)),
        )

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Oort's selection is biased by design (it chases utility, not a
        sampling distribution with known propensities); the convention is
        an unweighted ``1/K`` average of the selected updates."""
        return np.empty(0), equal_weights(nonsticky_ids)

    def complete_round(
        self, sticky_used: np.ndarray, nonsticky_used: np.ndarray
    ) -> None:
        # participation itself is recorded through observe_* feedback;
        # nothing structural to rebalance
        return None


# ------------------------------------------------------------ optimal sampling


def capped_proportional_probs(scores: np.ndarray, budget: int) -> np.ndarray:
    """Inclusion probabilities ``π_i = min(1, c · scores_i)`` with ``Σπ = budget``.

    The water-filling step of Optimal Client Sampling (Chen et al., 2020,
    Alg. 1): scale scores to sum to ``budget``, cap anything that exceeds 1
    and redistribute its excess over the rest, repeating until feasible.
    Zero-score clients inside an otherwise positive pool get probability 0;
    an all-zero pool degenerates to uniform ``budget / n``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = len(scores)
    if budget <= 0:
        return np.zeros(n)
    if budget >= n:
        return np.ones(n)
    probs = np.zeros(n)
    active = np.ones(n, dtype=bool)
    remaining = float(budget)
    for _ in range(n):
        total = scores[active].sum()
        if total <= 0.0:
            probs[active] = remaining / active.sum()
            break
        scaled = np.zeros(n)
        scaled[active] = scores[active] * (remaining / total)
        over = active & (scaled >= 1.0)
        if not over.any():
            probs[active] = scaled[active]
            break
        probs[over] = 1.0
        active &= ~over
        remaining = budget - probs[~active].sum()
        if not active.any():
            break
    return probs


class UpdateNormEstimator:
    """Per-client EMA of observed local-update norms.

    Unknown clients are treated *optimistically*: their estimate is the
    maximum known norm (or 1.0 before any observation), so a norm-aware
    sampler keeps exploring clients it has never aggregated.

    Observations are lazily materialized
    (:class:`~repro.utils.client_state.LazyClientState`): only ever-
    aggregated clients hold an entry, so the estimator costs O(cohort)
    memory at fleet scale.  ``estimates()`` still returns the dense
    N-vector the PPS draw needs — that allocation is per-draw, not
    resident state.
    """

    def __init__(self, num_clients: int, smoothing: float = 0.3):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self.num_clients = num_clients
        self._est = LazyClientState()

    @property
    def materialized_clients(self) -> int:
        """How many clients hold an observation (= ever aggregated)."""
        return len(self._est)

    def observe(self, client_id: int, norm: float) -> None:
        if norm < 0:
            raise ValueError("update norms are non-negative")
        cid = int(client_id)
        old = self._est.get(cid)
        if old is None:
            self._est.set(cid, float(norm))
        else:
            self._est.set(
                cid, (1.0 - self.smoothing) * old + self.smoothing * norm
            )

    def estimates(self) -> np.ndarray:
        """Effective norms: observations where known, optimistic elsewhere.

        A small floor keeps every probability positive — Horvitz–Thompson
        weights divide by π, so no available client may become unreachable.
        """
        known = self._est.values_by_id()
        prior = float(max(known.values())) if known else 1.0
        filled = np.full(self.num_clients, max(prior, 1e-12))
        if known:
            ids = np.fromiter(known.keys(), dtype=np.int64, count=len(known))
            vals = np.fromiter(known.values(), dtype=float, count=len(known))
            filled[ids] = vals
        floor = 1e-3 * max(prior, 1e-12)
        return np.maximum(filled, floor)


class OptimalClientSampler(ClientSampler):
    """Optimal Client Sampling (Chen et al., 2020): norm-proportional draws.

    Each round the sampler turns per-client update-norm estimates into
    inclusion probabilities ``π_i ∝ norm_i`` (capped at 1, water-filled so
    ``Σπ`` equals the round's draw size), samples that many distinct
    clients by systematic PPS over a randomly permuted pool, and exposes
    Horvitz–Thompson weights ``ν_i = p_i / π_i`` — an unbiased estimator
    of ``Σ p_i Δ_i`` for *any* positive π (property-tested).  Variance is
    minimized when π tracks the true update norms, which is exactly what
    the engine's norm-feedback hook estimates.

    Unbiasedness is exact under full availability without over-commitment.
    Over-committed draws are handled by realized-count self-normalization
    of the weights (see :meth:`aggregation_weights`); the residual bias
    from speed-correlated fastest-K selection is the same one the
    uniform/sticky samplers share (§5.6).

    The async scheduler's replacement dispatch also goes through the norm
    lens: :meth:`sample_replacements` draws ∝ the same estimates.
    """

    wants_update_norms = True

    def __init__(self, num_to_sample: int, smoothing: float = 0.3):
        super().__init__(num_to_sample)
        self._smoothing = smoothing
        self.estimator: Optional[UpdateNormEstimator] = None
        self._last_inclusion: np.ndarray = np.empty(0)
        self._last_draw_size: int = num_to_sample

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        super().setup(num_clients, rng)
        self.estimator = UpdateNormEstimator(
            num_clients, smoothing=self._smoothing
        )
        self._last_inclusion = np.full(num_clients, np.nan)

    def observe_update(self, client_id: int, norm: float) -> None:
        self.estimator.observe(client_id, norm)

    def _systematic_pps(self, pool: np.ndarray, probs: np.ndarray) -> np.ndarray:
        """Draw ``round(Σprobs)`` distinct ids with inclusion probs ``probs``.

        Systematic sampling over a randomly permuted pool: with every
        ``π_i ≤ 1`` the grid points land in distinct intervals, so the
        draw has exactly the requested size and marginal inclusion
        probabilities equal to π.
        """
        want = int(round(probs.sum()))
        if want >= len(pool):
            return pool.copy()
        order = self._rng.permutation(len(pool))
        cum = np.cumsum(probs[order])
        points = self._rng.uniform() + np.arange(want)
        picks = np.searchsorted(cum, points, side="left")
        picks = np.minimum(picks, len(pool) - 1)
        # float-edge duplicates are measure-zero; dedup keeps the draw valid
        return pool[order[np.unique(picks)]]

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        pool = np.flatnonzero(available)
        want = min(self.k + self._extras(overcommit, self.k), len(pool))
        if want == 0:
            raise RuntimeError(f"no clients available in round {round_idx}")
        norms = self.estimator.estimates()[pool]
        probs = capped_proportional_probs(norms, want)
        self._last_inclusion = np.full(self.num_clients, np.nan)
        self._last_inclusion[pool] = probs
        self._last_draw_size = want
        chosen = self._systematic_pps(pool, probs)
        return SampleDraw(
            sticky=np.empty(0, dtype=np.int64),
            nonsticky=chosen.astype(np.int64),
            quota_sticky=0,
            quota_nonsticky=min(self.k, want),
        )

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Horvitz–Thompson ``ν_i = p_i / π_i``, self-normalized for
        over-commitment.

        With over-commitment only the fastest K of the ~1.3K drawn
        candidates aggregate, so raw HT weights would cover only K/1.3K
        of the objective in expectation.  Scaling by
        ``drawn / realized`` restores ``E[Σν] = Σp`` — the same
        realized-count self-normalization Eq. 2/Eq. 3 get by dividing by
        the actual participant count (under uniform norms this reduces
        exactly to ``fedavg_weights`` over the realized participants).
        """
        ids = np.asarray(nonsticky_ids, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0), np.empty(0)
        pi = self._last_inclusion[ids]
        if np.isnan(pi).any():
            raise RuntimeError(
                "aggregation_weights called with ids outside the last draw"
            )
        nu = horvitz_thompson_weights(p, ids, pi)
        return np.empty(0), nu * (self._last_draw_size / len(ids))

    def replacement_scores(self, pool: np.ndarray) -> Optional[np.ndarray]:
        """Async dispatch ∝ norm estimates (see the base hook)."""
        return self.estimator.estimates()[pool]


class DynamicScheduleSampler(ClientSampler):
    """Dynamic Sampling (Ji et al., 2020): anneal the budget K over rounds.

    Wraps any bucket-free sampler and shrinks its per-round budget
    ``K_t = max(k_min, round(K_0 · decay^(t−1)))`` — broad participation
    while the model moves fast, less bandwidth once it stabilizes.  All
    other sampler behavior (weights, feedback) delegates to the inner
    sampler, whose weight correction stays unbiased at every budget
    because it is recomputed from the realized draw.

    Sync-shaped schedulers only (sync/failure/overlapped): annealing acts
    through :meth:`draw`, which the async scheduler never calls, and the
    semiasync scheduler folds stale updates across rounds whose ``1/K``
    share the annealed budget would distort — ``RunConfig.validate``
    rejects both combinations instead of silently misbehaving
    (``supports_async = False``).
    """

    supports_async = False

    def __init__(
        self, inner: ClientSampler, k_min: int, decay: float = 0.98
    ):
        if isinstance(inner, DynamicScheduleSampler):
            raise ValueError("cannot nest DynamicScheduleSampler")
        if not 0 < k_min <= inner.k:
            raise ValueError(
                f"need 0 < k_min <= K_0, got k_min={k_min}, K_0={inner.k}"
            )
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        sticky_floor = getattr(inner, "sticky_count", None)
        if sticky_floor is not None and k_min < sticky_floor:
            raise ValueError(
                "k_min below the inner sampler's sticky_count would break "
                "its quota split"
            )
        self.inner = inner
        self.k0 = inner.k
        self.k_min = k_min
        self.decay = decay
        self.wants_update_norms = inner.wants_update_norms

    @property
    def k(self) -> int:  # noqa: D401 - mirrors the base attribute
        """The inner sampler's *current* budget (K_0 before any draw)."""
        return self.inner.k

    @property
    def num_clients(self) -> int:
        return self.inner.num_clients

    def budget_at(self, round_idx: int) -> int:
        """The annealed budget K_t for ``round_idx`` (1-based)."""
        t = max(0, round_idx - 1)
        return max(self.k_min, int(round(self.k0 * self.decay**t)))

    def setup(self, num_clients: int, rng: np.random.Generator) -> None:
        self.inner.setup(num_clients, rng)

    def draw(
        self, round_idx: int, available: np.ndarray, overcommit: float = 1.0
    ) -> SampleDraw:
        self.inner.k = self.budget_at(round_idx)
        return self.inner.draw(round_idx, available, overcommit)

    @property
    def supports_pool_draw(self) -> bool:
        # class attributes resolve on the base class before __getattr__
        # runs, so the pool capability must delegate explicitly
        return self.inner.supports_pool_draw

    def draw_pool(
        self, round_idx: int, pool, overcommit: float = 1.0
    ) -> SampleDraw:
        self.inner.k = self.budget_at(round_idx)
        return self.inner.draw_pool(round_idx, pool, overcommit)

    def sample_replacements_pool(self, pool, exclude, count: int):
        return self.inner.sample_replacements_pool(pool, exclude, count)

    def complete_round(
        self, sticky_used: np.ndarray, nonsticky_used: np.ndarray
    ) -> None:
        self.inner.complete_round(sticky_used, nonsticky_used)

    def aggregation_weights(
        self, p: np.ndarray, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.aggregation_weights(p, sticky_ids, nonsticky_ids)

    def observe_update(self, client_id: int, norm: float) -> None:
        self.inner.observe_update(client_id, norm)

    def dp_sample_rate(self, num_clients: int, overcommit: float) -> float:
        # annealing only ever shrinks the inner budget, so the inner
        # sampler's rate (computed at K_0) stays a valid upper bound
        return self.inner.dp_sample_rate(num_clients, overcommit)

    def sample_replacements(
        self, available: np.ndarray, exclude: np.ndarray, count: int
    ) -> np.ndarray:
        return self.inner.sample_replacements(available, exclude, count)

    def __getattr__(self, name: str):
        # inner-specific hooks (Oort's observe_loss/observe_speed, sticky
        # membership helpers, ...) pass through; only reached for names
        # this wrapper doesn't define itself
        if name == "inner":  # pickle/copy probe before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)
