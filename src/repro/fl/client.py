"""Client-side local training (Algorithm 2/3 lines 8–14).

One trainer owns one model instance (the serial backend reuses a single
shared instance for every client; parallel backends give each worker its
own replica + trainer): load the global state, run ``E`` local SGD steps on
the client's shard, and return the parameter delta
``Δ_i = w^{t,E}_i − w^t`` plus the batch-norm buffer delta (Appendix D,
Eq. 49).  Mini-batch features are cast once per batch to the model's
parameter dtype, so a float32 run never silently up-casts to float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import ClientDataset
from repro.nn.flat import FlatParamView
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.runtime.arena import BufferArena, activate

__all__ = ["LocalResult", "LocalTrainer"]


@dataclass
class LocalResult:
    """Outcome of one client's local round."""

    delta: np.ndarray
    buffer_delta: np.ndarray
    num_samples: int
    mean_loss: float


class LocalTrainer:
    """Runs local SGD rounds against a shared model instance.

    Parameters
    ----------
    model:
        The shared model whose weights are overwritten per client.
    local_steps:
        E — local SGD iterations per round (paper: 10).
    batch_size:
        Mini-batch size per step.
    momentum, weight_decay:
        Client optimizer settings (paper: momentum 0.9).
    use_arena:
        Recycle the step's scratch buffers (im2col matrices, norm/pool
        temporaries, optimizer updates) through a private
        :class:`~repro.runtime.arena.BufferArena` instead of reallocating
        them every step.  Bit-identical either way; default on.
    sanitize:
        Run the arena in sanitizer mode (guarded scratch views; see
        :mod:`repro.runtime.sanitize`).  ``None`` follows the
        ``REPRO_SANITIZE`` environment gate.
    """

    def __init__(
        self,
        model: Module,
        local_steps: int,
        batch_size: int,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        use_arena: bool = True,
        sanitize: Optional[bool] = None,
    ):
        if local_steps <= 0:
            raise ValueError("local_steps must be positive")
        self.model = model
        self.view = FlatParamView(model)
        self.dtype = self.view.dtype
        self.local_steps = local_steps
        self.batch_size = batch_size
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.loss = CrossEntropyLoss()
        # private per-trainer pool: the thread backend hands each replica
        # (and thus each arena) to one in-flight task at a time
        self.arena = BufferArena(sanitize=sanitize) if use_arena else None

    def run(
        self,
        global_params: np.ndarray,
        global_buffers: np.ndarray,
        dataset: ClientDataset,
        lr: float,
        rng: np.random.Generator,
        local_steps: Optional[int] = None,
    ) -> LocalResult:
        """Train ``E`` steps from the given global state; return deltas.

        ``local_steps`` overrides the configured E for this call — partial
        work from devices whose population completeness is below 1.
        """
        steps = self.local_steps if local_steps is None else local_steps
        if steps <= 0:
            raise ValueError("local_steps override must be positive")
        self.view.set_flat(global_params)
        if self.view.num_buffer:
            self.view.set_buffers_flat(global_buffers)
        self.model.train()
        # fresh momentum each participation: client state is not retained
        optimizer = SGD(
            self.model.parameters(),
            lr=lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        losses = []
        if self.arena is not None:
            # every scratch buffer taken during a step is dead once the
            # optimizer has applied it — reclaim the whole epoch at once
            with activate(self.arena):
                for xb, yb in dataset.batches(
                    self.batch_size, rng, num_batches=steps
                ):
                    optimizer.zero_grad()
                    logits = self.model(xb.astype(self.dtype, copy=False))
                    losses.append(self.loss(logits, yb))
                    self.model.backward(self.loss.backward())
                    optimizer.step()
                    self.arena.reset()
        else:
            for xb, yb in dataset.batches(
                self.batch_size, rng, num_batches=steps
            ):
                optimizer.zero_grad()
                logits = self.model(xb.astype(self.dtype, copy=False))
                losses.append(self.loss(logits, yb))
                self.model.backward(self.loss.backward())
                optimizer.step()
        delta = self.view.get_flat() - global_params
        if self.view.num_buffer:
            buffer_delta = self.view.get_buffers_flat() - global_buffers
        else:
            buffer_delta = np.zeros(0, dtype=self.dtype)
        return LocalResult(
            delta=delta,
            buffer_delta=buffer_delta,
            num_samples=len(dataset),
            mean_loss=float(np.mean(losses)),
        )
