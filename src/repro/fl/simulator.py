"""Round timing: over-commitment, stragglers, and participant selection.

Each candidate's round latency is ``download + E·compute + upload``.  With
over-commitment the server contacts more candidates than it needs and
aggregates the **first K whose uploads arrive** (Bonawitz et al., 2019),
respecting the sticky/non-sticky quota split.  The round's wall-clock time
is when the last needed upload lands; the round's download time (the DT
metric) is the slowest download among actual participants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CandidateTimings", "ParticipantSelection", "select_participants"]


@dataclass
class CandidateTimings:
    """Per-candidate latency components (parallel arrays)."""

    client_ids: np.ndarray
    download_s: np.ndarray
    compute_s: np.ndarray
    upload_s: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.client_ids)
        for arr in (self.download_s, self.compute_s, self.upload_s):
            if len(arr) != n:
                raise ValueError("timing arrays must be parallel")

    @property
    def finish_s(self) -> np.ndarray:
        return self.download_s + self.compute_s + self.upload_s


@dataclass
class ParticipantSelection:
    """Who made the cut, and the round clock."""

    sticky_ids: np.ndarray
    nonsticky_ids: np.ndarray
    round_seconds: float
    download_seconds: float
    compute_seconds: float
    upload_seconds: float
    #: the download/compute/upload legs of the *critical* participant —
    #: the one whose upload lands last, so the three legs sum exactly to
    #: ``round_seconds``.  Overlapped-round clock models pipeline on these
    #: legs (the per-leg maxima above are taken over different clients and
    #: sum to more than the critical path).
    critical_download_s: float = 0.0
    critical_compute_s: float = 0.0
    critical_upload_s: float = 0.0

    @property
    def participant_ids(self) -> np.ndarray:
        return np.concatenate([self.sticky_ids, self.nonsticky_ids])

    @property
    def count(self) -> int:
        return len(self.sticky_ids) + len(self.nonsticky_ids)


def _fastest(
    ids: np.ndarray, finish: np.ndarray, quota: int
) -> np.ndarray:
    """Ids of the ``quota`` earliest finishers (all if fewer survive)."""
    if quota >= len(ids):
        return ids
    order = np.argsort(finish, kind="stable")[:quota]
    return ids[order]


def select_participants(
    sticky_timings: CandidateTimings,
    nonsticky_timings: CandidateTimings,
    quota_sticky: int,
    quota_nonsticky: int,
    sticky_survives: np.ndarray,
    nonsticky_survives: np.ndarray,
) -> ParticipantSelection:
    """Pick the first-K finishers per bucket among surviving candidates.

    ``*_survives`` mark candidates whose upload actually arrives (mid-round
    dropout is drawn by the availability trace).  The returned clock values
    are taken over the *chosen* participants: the round ends when the last
    needed upload arrives.
    """
    chosen = []
    for timings, quota, survives in (
        (sticky_timings, quota_sticky, sticky_survives),
        (nonsticky_timings, quota_nonsticky, nonsticky_survives),
    ):
        alive = np.flatnonzero(survives)
        ids = timings.client_ids[alive]
        finish = timings.finish_s[alive]
        take = _fastest(ids, finish, quota)
        chosen.append(take)
    sticky_ids, nonsticky_ids = chosen

    # map chosen ids back to their rows in each timing table: searchsorted
    # over an argsorted view instead of building a Python dict per call
    positions = []
    for timings, ids in (
        (sticky_timings, sticky_ids),
        (nonsticky_timings, nonsticky_ids),
    ):
        order = np.argsort(timings.client_ids, kind="stable")
        rows = order[
            np.searchsorted(timings.client_ids[order], ids)
        ] if len(ids) else np.empty(0, dtype=np.int64)
        positions.append((timings, rows.astype(np.int64, copy=False)))

    def _gather(arr_name: str) -> np.ndarray:
        vals = [
            getattr(timings, arr_name)[rows]
            for timings, rows in positions
            if len(rows)
        ]
        return np.concatenate(vals) if vals else np.empty(0)

    finish = _gather("finish_s")
    download = _gather("download_s")
    compute = _gather("compute_s")
    upload = _gather("upload_s")
    if len(finish):
        # the critical participant: the one whose upload lands last (its
        # legs sum exactly to round_seconds — overlapped clocks pipeline
        # on them); argmax picks the same element np.max reduces to
        crit = int(np.argmax(finish))
        round_seconds = float(finish[crit])
        critical_download = float(download[crit])
        critical_compute = float(compute[crit])
        critical_upload = float(upload[crit])
        download_seconds = float(np.max(download))
        compute_seconds = float(np.max(compute))
        upload_seconds = float(np.max(upload))
    else:
        round_seconds = download_seconds = compute_seconds = 0.0
        upload_seconds = 0.0
        critical_download = critical_compute = critical_upload = 0.0
    return ParticipantSelection(
        sticky_ids=sticky_ids,
        nonsticky_ids=nonsticky_ids,
        round_seconds=round_seconds,
        download_seconds=download_seconds,
        compute_seconds=compute_seconds,
        upload_seconds=upload_seconds,
        critical_download_s=critical_download,
        critical_compute_s=critical_compute,
        critical_upload_s=critical_upload,
    )
