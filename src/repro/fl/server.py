"""The FL server: Algorithm 1/2/3's round loop with full systems accounting.

One :class:`FLServer` instance owns the global model, the strategy, the
sampler, and all substrate models (bandwidth, compute, availability,
staleness).  Each round:

1.  the sampler draws over-committed candidates (sticky + non-sticky);
2.  every contacted candidate downloads its stale coordinates plus the
    strategy's mask overhead (downstream accounting) and is marked synced;
3.  the timing simulator keeps the first-K finishers per bucket;
4.  participants run local SGD and compress their deltas (upstream
    accounting);
5.  the strategy aggregates with inverse-propensity (or equal) weights,
    the global model moves, BN buffers are averaged (Appendix D), the
    staleness ledger records the changed coordinates;
6.  the sampler rebalances its sticky group and the strategy shifts its
    masks.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.compression.base import ClientPayload
from repro.fl.aggregation import (
    aggregate_buffer_deltas,
    equal_weights,
    fedavg_weights,
    sticky_weights,
)
from repro.fl.client import LocalTrainer
from repro.fl.config import RunConfig
from repro.fl.metrics import RoundRecord, RunResult
from repro.fl.samplers import SampleDraw, StickySampler
from repro.fl.simulator import CandidateTimings, select_participants
from repro.fl.staleness import StalenessTracker
from repro.network.encoding import dense_bytes
from repro.network.profiles import get_profile
from repro.network.transfer import ClientLinks
from repro.nn.flat import FlatParamView
from repro.nn.models import build_model
from repro.runtime.backends import ClientTask, WorkerSpec, create_backend
from repro.runtime.dtype import resolve_dtype
from repro.traces.availability import AvailabilityTrace, always_available
from repro.traces.compute import ComputeTrace
from repro.utils.logging import RunLogger
from repro.utils.rng import RngFactory

__all__ = ["FLServer", "run_training"]


class FLServer:
    """Owns the global model and executes the training rounds."""

    def __init__(self, config: RunConfig):
        config.validate()
        self.config = config
        self.rngs = RngFactory(config.seed)
        dataset = config.dataset
        self.n = dataset.num_clients
        self.p = dataset.weights()

        self.dtype = resolve_dtype(config.dtype)
        self.model = build_model(
            config.model_name,
            in_channels=dataset.in_channels,
            num_classes=dataset.num_classes,
            image_size=dataset.image_size,
            rng=self.rngs("model-init"),
            dtype=self.dtype,
            **config.model_kwargs,
        )
        self.view = FlatParamView(self.model)
        self.d = self.view.num_trainable
        self.global_params = self.view.get_flat()
        self.global_buffers = self.view.get_buffers_flat()

        self.strategy = config.strategy
        self.strategy.setup(self.d, self.rngs("strategy"), dtype=self.dtype)
        self.sampler = config.sampler
        self.sampler.setup(self.n, self.rngs("sampler"))

        profile = get_profile(config.network_profile)
        self.links = ClientLinks(profile.sample(self.n, self.rngs("bandwidth")))
        self.compute = ComputeTrace(
            self.n,
            self.rngs("compute"),
            base_step_seconds=config.base_step_seconds,
            sigma=config.compute_sigma,
        )
        self.model_scale = ComputeTrace.model_scale(self.d)
        if config.availability_trace is not None:
            self.availability = config.availability_trace
        elif config.always_available:
            self.availability = always_available(self.n)
        else:
            self.availability = AvailabilityTrace(
                self.n,
                self.rngs("availability"),
                mean_on_fraction=config.mean_on_fraction,
                dropout_prob=config.dropout_prob,
            )
        self.staleness = StalenessTracker(self.d, self.n)
        self.trainer = LocalTrainer(
            self.model,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self._worker_spec = WorkerSpec(
            model_name=config.model_name,
            model_kwargs=dict(config.model_kwargs),
            in_channels=dataset.in_channels,
            num_classes=dataset.num_classes,
            image_size=dataset.image_size,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            seed=config.seed,
            clients=dataset.clients,
            dtype=str(self.dtype),
            d=self.d,
            num_buffer=self.view.num_buffer,
        )
        self._backend = None
        self.lr_schedule = config.lr_schedule()
        self.logger = RunLogger(echo=config.log_echo)
        self.round_idx = 0

    # -- weights ---------------------------------------------------------------
    def _weights_for(
        self, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregation weights ν for the two participant buckets."""
        if self.config.weight_mode == "equal":
            all_ids = np.concatenate([sticky_ids, nonsticky_ids])
            w = equal_weights(all_ids)
            return w[: len(sticky_ids)], w[len(sticky_ids) :]
        if isinstance(self.sampler, StickySampler) and len(sticky_ids):
            return sticky_weights(
                self.p,
                sticky_ids,
                nonsticky_ids,
                group_size=self.sampler.group_size,
                num_clients=self.n,
            )
        # uniform sampling: Eq. 2
        return (
            np.empty(0),
            fedavg_weights(self.p, nonsticky_ids, self.n),
        )

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self) -> float:
        """Top-k accuracy of the current global model on the test set."""
        cfg = self.config
        dataset = cfg.dataset
        self.view.set_flat(self.global_params)
        if self.view.num_buffer:
            self.view.set_buffers_flat(self.global_buffers)
        self.model.eval()
        correct = 0
        total = len(dataset.test_y)
        for start in range(0, total, cfg.eval_batch):
            xb = dataset.test_x[start : start + cfg.eval_batch]
            yb = dataset.test_y[start : start + cfg.eval_batch]
            logits = self.model(xb.astype(self.dtype, copy=False))
            if cfg.eval_top_k == 1:
                correct += int((logits.argmax(axis=1) == yb).sum())
            else:
                top = np.argsort(logits, axis=1)[:, -cfg.eval_top_k :]
                correct += int((top == yb[:, None]).any(axis=1).sum())
        self.model.train()
        return correct / total

    # -- one round ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        cfg = self.config
        self.round_idx += 1
        t = self.round_idx
        self.strategy.begin_round(t)

        available = self.availability.online(t)
        draw: SampleDraw = self.sampler.draw(t, available, cfg.overcommit)
        candidates = draw.candidates

        # --- downstream: stale-coordinate sync + strategy mask overhead ---
        sync_bytes = self.staleness.download_bytes_many(candidates)
        extra = self.strategy.downstream_extra_bytes()
        if cfg.count_buffer_sync and self.view.num_buffer:
            extra += dense_bytes(self.view.num_buffer)
        down_per_client = sync_bytes + extra
        down_bytes_total = int(down_per_client.sum())
        mean_stale = self.staleness.mean_staleness_fraction(candidates)
        sync_details = None
        if cfg.collect_sync_details:
            # one model update is applied per round, so version == round gap
            sync_details = [
                (
                    int(cid),
                    int(self.staleness.version - self.staleness.last_sync[cid])
                    if self.staleness.last_sync[cid] >= 0
                    else -1,
                    int(nbytes),
                )
                for cid, nbytes in zip(candidates, sync_bytes)
            ]
        self.staleness.mark_synced(candidates)

        # --- timing: download + compute + upload estimate per candidate ---
        up_nominal = self.strategy.nominal_upstream_bytes()
        if cfg.count_buffer_sync and self.view.num_buffer:
            up_nominal += dense_bytes(self.view.num_buffer)

        def timings_for(ids: np.ndarray, down: np.ndarray) -> CandidateTimings:
            return CandidateTimings(
                client_ids=ids,
                download_s=self.links.download_seconds_many(ids, down),
                compute_s=self.compute.round_seconds_many(
                    ids, cfg.local_steps, self.model_scale
                ),
                upload_s=self.links.upload_seconds_many(
                    ids, np.full(len(ids), up_nominal)
                ),
            )

        n_sticky = len(draw.sticky)
        sticky_t = timings_for(draw.sticky, down_per_client[:n_sticky])
        nonsticky_t = timings_for(draw.nonsticky, down_per_client[n_sticky:])
        selection = select_participants(
            sticky_t,
            nonsticky_t,
            draw.quota_sticky,
            draw.quota_nonsticky,
            self.availability.survives_round(draw.sticky),
            self.availability.survives_round(draw.nonsticky),
        )

        # --- local training (via the execution backend) + compression ---
        nu_s, nu_r = self._weights_for(selection.sticky_ids, selection.nonsticky_ids)
        lr = self.lr_schedule.at_round(t - 1)
        all_weights = np.concatenate([nu_s, nu_r])
        tasks = [
            ClientTask(client_id=int(cid), lr=lr, round_idx=t)
            for cid in np.concatenate(
                [selection.sticky_ids, selection.nonsticky_ids]
            )
        ]
        results = self.backend.run_clients(
            tasks, self.global_params, self.global_buffers
        )

        # compression + aggregation stay in the server process, in task
        # order, so every backend is bit-identical to serial execution
        payloads: List[Tuple[int, float, ClientPayload]] = []
        buffer_deltas = []
        up_bytes_total = 0
        losses = []
        for result, weight in zip(results, all_weights):
            payload = self.strategy.client_compress(
                result.client_id, result.delta, float(weight)
            )
            payloads.append((result.client_id, float(weight), payload))
            buffer_deltas.append(result.buffer_delta)
            up_bytes_total += payload.upstream_bytes
            losses.append(result.mean_loss)
        if cfg.count_buffer_sync and self.view.num_buffer:
            up_bytes_total += dense_bytes(self.view.num_buffer) * len(payloads)

        if not payloads:
            raise RuntimeError(f"round {t}: no participants survived")

        # --- aggregation + model update ---
        agg = self.strategy.aggregate(payloads)
        self.global_params = self.global_params + agg.global_delta
        if self.view.num_buffer and buffer_deltas:
            self.global_buffers = self.global_buffers + aggregate_buffer_deltas(
                buffer_deltas
            )
        self.staleness.record_update(agg.changed_idx)
        self.sampler.complete_round(selection.sticky_ids, selection.nonsticky_ids)
        self.strategy.end_round(agg, t)

        # --- measurement ---
        accuracy = None
        if t % cfg.eval_every == 0 or t == cfg.rounds:
            accuracy = self.evaluate()
            self.logger.log(
                "eval", round=t, accuracy=round(accuracy, 4),
                down_gb=round(down_bytes_total / 1e9, 4),
            )
        return RoundRecord(
            round_idx=t,
            down_bytes=down_bytes_total,
            up_bytes=up_bytes_total,
            round_seconds=selection.round_seconds,
            download_seconds=selection.download_seconds,
            compute_seconds=selection.compute_seconds,
            upload_seconds=selection.upload_seconds,
            num_candidates=len(candidates),
            num_participants=selection.count,
            mean_stale_fraction=mean_stale,
            train_loss=float(np.mean(losses)),
            accuracy=accuracy,
            sync_details=sync_details,
        )

    # -- lifecycle ----------------------------------------------------------------------
    @property
    def backend(self):
        """The execution backend, created on first use.

        Lazy so that a closed server stays usable: the next ``run_round``
        simply builds a fresh pool.
        """
        if self._backend is None:
            workers = self.config.backend_workers
            if workers is None:
                # at most K clients run per round — never pool wider
                workers = min(self.sampler.k, os.cpu_count() or 1)
            self._backend = create_backend(
                self.config.execution_backend,
                self._worker_spec,
                trainer=self.trainer,
                workers=workers,
            )
        return self._backend

    def close(self) -> None:
        """Release execution-backend resources (pools, shared memory).

        Idempotent; only needed when ``run_round`` is driven manually with
        a parallel backend — :meth:`run` closes automatically.  Further
        training after close is fine: a fresh backend is built on demand.
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    # -- full run -----------------------------------------------------------------------
    def run(self) -> RunResult:
        cfg = self.config
        result = RunResult(
            meta={
                "strategy": self.strategy.name,
                "model": cfg.model_name,
                "dataset": cfg.dataset.name,
                "d": self.d,
                "n": self.n,
                "k": self.sampler.k,
                "rounds": cfg.rounds,
                "seed": cfg.seed,
            }
        )
        try:
            for _ in range(cfg.rounds):
                result.append(self.run_round())
                if (
                    cfg.stop_at_target
                    and cfg.target_accuracy is not None
                    and result.rounds_to_target(
                        cfg.target_accuracy, cfg.accuracy_window
                    )
                    is not None
                ):
                    break
        finally:
            self.close()
        return result


def run_training(config: RunConfig) -> RunResult:
    """Build a server from ``config`` and run it to completion."""
    return FLServer(config).run()
