"""The FL server: state-holder + driver for the phase-based round engine.

Since the engine refactor, :class:`FLServer` no longer owns a round loop.
It owns the *state* — global model, strategy, sampler, and the substrate
models (bandwidth, compute, availability, staleness) — and delegates every
``run_round`` call to a :class:`~repro.engine.schedulers.Scheduler` chosen
by ``RunConfig.scheduler``:

* ``"sync"`` drives the seven-phase :class:`~repro.engine.engine.RoundEngine`
  (sampling → sync accounting → timing/selection → execution → compression
  → aggregation → measurement) — a faithful, bit-identical decomposition of
  Algorithm 1's round (pinned by ``tests/engine/test_round_engine.py``);
* ``"async"`` runs FedBuff-style buffered asynchrony over the shared
  simulated-time clock's event queue of client finish times;
* ``"failure"`` replays the sync pipeline over a fault-injecting device
  population (``"storm"`` preset: dropout bursts + straggler storms as
  trace-driven state transitions);
* ``"semiasync"`` runs FLASH-style tiered rounds (sync fast tier at its
  deadline + staleness-discounted straggler fold-in);
* ``"overlapped"`` replays the sync pipeline under a pipelined clock
  (round *t+1* downloads overlap round *t* uploads).

All five run on one :class:`~repro.engine.clock.SimClock` per scheduler,
whose cumulative reading lands in ``RoundRecord.wall_clock_s``.

Phases and scheduler hooks reach the state through this object (``server``
in their signatures); anything per-round lives in the
:class:`~repro.engine.context.RoundContext` instead, so no stale round
state ever survives on the server.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Tuple

import numpy as np

from repro.fl.aggregation import equal_weights
from repro.fl.client import LocalTrainer
from repro.fl.config import RunConfig
from repro.fl.metrics import RoundRecord, RunResult
from repro.fl.staleness import StalenessTracker
from repro.network.profiles import get_profile
from repro.network.transfer import ClientLinks
from repro.nn.flat import FlatParamView
from repro.nn.models import build_model
from repro.runtime.arena import BufferArena, activate
from repro.runtime.backends import WorkerSpec, create_backend
from repro.runtime.dtype import accumulation_dtype, resolve_dtype
from repro.traces.availability import AvailabilityTrace, always_available
from repro.traces.compute import ComputeTrace
from repro.utils.logging import RunLogger
from repro.utils.rng import RngFactory

__all__ = ["FLServer", "run_training"]


class FLServer:
    """Owns the global model and training state; schedulers drive it."""

    def __init__(self, config: RunConfig):
        config.validate()
        self.config = config
        self.rngs = RngFactory(config.seed)
        dataset = config.dataset
        self.n = dataset.num_clients
        self.p = dataset.weights()

        self.dtype = resolve_dtype(config.dtype)
        self.model = build_model(
            config.model_name,
            in_channels=dataset.in_channels,
            num_classes=dataset.num_classes,
            image_size=dataset.image_size,
            rng=self.rngs("model-init"),
            dtype=self.dtype,
            **config.model_kwargs,
        )
        self.view = FlatParamView(self.model)
        self.d = self.view.num_trainable
        # the globals are replaced (never mutated) on every update — async
        # in-flight jobs keep references as dispatch-time snapshots — so
        # they stay read-only for their whole lifetime
        self.global_params = self.view.get_flat()
        self.global_params.flags.writeable = False
        self.global_buffers = self.view.get_buffers_flat()
        self.global_buffers.flags.writeable = False

        self.strategy = config.strategy
        if config.privacy_mode != "off":
            self.strategy = self._privatize_strategy(config)
        # strategies accumulate dense sums in the accumulation dtype —
        # identical to the run dtype except for half-precision runs, whose
        # aggregation is pinned to float32 (see repro.runtime.dtype)
        self.strategy.setup(
            self.d, self.rngs("strategy"), dtype=accumulation_dtype(self.dtype)
        )
        # sharded server hot path (repro.sharding): bind a runtime so the
        # strategy's aggregation sums and top-k selections run shard-by-
        # shard — bit-identical to the unsharded path, so goldens hold
        # with the flag on or off.  Lazy import: repro.sharding pulls in
        # runtime/compression modules this module also feeds.
        if config.shard_count is not None:
            from repro.sharding import ShardingRuntime

            self.sharding = ShardingRuntime(
                self.d,
                config.shard_count,
                backend=config.shard_backend,
                workers=config.backend_workers,
                mmap=config.shard_mmap,
            )
            self.strategy.bind_sharding(self.sharding)
        else:
            self.sharding = None
        if config.residual_max_clients is not None:
            # bound per-client error-compensation state to an LRU budget;
            # wrappers delegate the call down to the strategy that owns
            # the store (see CompressionStrategy.limit_residuals)
            self.strategy.limit_residuals(config.residual_max_clients)
        self.sampler = config.sampler
        self.sampler.setup(self.n, self.rngs("sampler"))

        profile = get_profile(config.network_profile)
        self.links = ClientLinks(profile.sample(self.n, self.rngs("bandwidth")))
        self.compute = ComputeTrace(
            self.n,
            self.rngs("compute"),
            base_step_seconds=config.base_step_seconds,
            sigma=config.compute_sigma,
        )
        self.model_scale = ComputeTrace.model_scale(self.d)
        if config.availability_trace is not None:
            self.availability = config.availability_trace
        elif config.always_available:
            self.availability = always_available(self.n)
        else:
            self.availability = AvailabilityTrace(
                self.n,
                self.rngs("availability"),
                mean_on_fraction=config.mean_on_fraction,
                dropout_prob=config.dropout_prob,
            )
        # device population: explicit object > preset > auto "storm" for
        # the failure scheduler (its faults are trace-driven transitions).
        # When bound, the population *is* the availability model — it
        # duck-types the trace protocol over its vectorized state columns.
        if config.population is not None:
            self.population = config.population
        elif config.population_preset is not None or config.scheduler == "failure":
            from repro.population import build_population

            self.population = build_population(
                config.population_preset or "storm",
                self.n,
                self.rngs("population"),
                config=config,
            )
        else:
            self.population = None
        if self.population is not None:
            if self.population.num_clients != self.n:
                raise ValueError(
                    f"population models {self.population.num_clients} "
                    f"clients but the dataset has {self.n}"
                )
            if config.population_scalable_sampling:
                if not getattr(self.population, "event_driven", False):
                    raise ValueError(
                        "population_scalable_sampling needs an event-driven "
                        "population (only the event path maintains the idle "
                        "index); this population runs the sweep"
                    )
                # presets inherit the flag at construction; an explicit
                # population object is marked here
                self.population.scalable_sampling = True
            self.availability = self.population
        self.staleness = StalenessTracker(self.d, self.n)
        self.trainer = LocalTrainer(
            self.model,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            use_arena=config.use_arena,
            sanitize=True if config.sanitize else None,
        )
        # server-side scratch pool for the compression/aggregation hot path
        # (top-k magnitude buffers, dense accumulators); round-scoped via
        # scratch_scope()
        self.scratch_arena = BufferArena() if config.use_arena else None
        self._worker_spec = WorkerSpec(
            model_name=config.model_name,
            model_kwargs=dict(config.model_kwargs),
            in_channels=dataset.in_channels,
            num_classes=dataset.num_classes,
            image_size=dataset.image_size,
            local_steps=config.local_steps,
            batch_size=config.batch_size,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            seed=config.seed,
            clients=dataset.clients,
            dtype=config.dtype,
            d=self.d,
            num_buffer=self.view.num_buffer,
            use_arena=config.use_arena,
            sanitize=config.sanitize,
            # sizes the process backend's zero-copy result rings: the most
            # results a scheduler can ask for before draining them
            max_in_flight=max(
                int(math.ceil(config.overcommit * config.sampler.k)),
                config.async_concurrency or 0,
            ),
            batch_replicas=config.batch_replicas or 0,
        )
        self._backend = None
        self.lr_schedule = config.lr_schedule()
        self.logger = RunLogger(echo=config.log_echo)
        self.round_idx = 0

        # local import: repro.engine's phases import repro.fl submodules, so
        # a module-level import here would cycle through repro.fl.__init__
        from repro.engine import create_scheduler

        self.scheduler = create_scheduler(config.scheduler)
        self.scheduler.setup(self)

    # -- privacy wiring --------------------------------------------------------
    def _privatize_strategy(self, config: RunConfig):
        """Wrap the configured strategy per ``privacy_mode`` (see
        :mod:`repro.privacy`); every scheduler then runs privatized
        unchanged.

        Two seam subtleties live here rather than in the wrapper:

        * **Amplification is the sampler's claim.**  The accountant's
          sampled-Gaussian bound is proved for *Poisson* subsampling, so
          the rate comes from ``sampler.dp_sample_rate`` — sub-1 only for
          :class:`~repro.fl.samplers.PoissonSampler`, whose draw is that
          scheme; uniform fixed-size, sticky, norm-aware and utility
          policies all answer 1.0 — and is forced to 1.0 under the async
          scheduler, whose continuous dispatch keeps clients in flight
          rather than sampling rounds.
        * **Noise goes under quantization, not over it.**  A
          ``QuantizedStrategy`` re-prices payloads to ``bits`` per value;
          noising *after* quantization would put off-grid floats on wire
          bytes priced for the grid.  The private layer is spliced inside
          the quantization wrapper: ``Quantized(Private(inner))``.
        """
        from repro.compression.quantized import QuantizedStrategy
        from repro.privacy import build_private_strategy

        # overlapped has identical per-round sampling to sync (only the
        # clock differs); semiasync folds stale arrivals across rounds and
        # async never samples rounds at all, so both account at rate 1.0
        if config.scheduler in ("sync", "failure", "overlapped"):
            sample_rate = config.sampler.dp_sample_rate(
                self.n, config.overcommit
            )
        else:
            sample_rate = 1.0

        def privatize(inner):
            return build_private_strategy(
                inner,
                mode=config.privacy_mode,
                rounds=config.rounds,
                sample_rate=sample_rate,
                epsilon=config.privacy_epsilon,
                delta=config.privacy_delta,
                clip_norm=config.privacy_clip_norm,
                noise_multiplier=config.privacy_noise_multiplier,
                defense_fraction=config.privacy_defense_fraction,
                values_only=config.privacy_values_only,
            )

        if isinstance(config.strategy, QuantizedStrategy):
            return QuantizedStrategy(
                privatize(config.strategy.inner), bits=config.strategy.bits
            )
        return privatize(config.strategy)

    # -- scratch ---------------------------------------------------------------
    @contextmanager
    def scratch_scope(self):
        """Round-scoped server-side scratch arena.

        The compression/aggregation helpers wrap their hot loops in this
        scope so per-client magnitude buffers and dense accumulators are
        recycled across clients and rounds.  Everything taken inside the
        scope is reclaimed on exit — only arrays that never escape the
        scope may come from scratch.  No-op when ``use_arena`` is off.
        """
        if self.scratch_arena is None:
            yield None
            return
        with activate(self.scratch_arena):
            try:
                yield self.scratch_arena
            finally:
                self.scratch_arena.reset()

    # -- weights ---------------------------------------------------------------
    def _weights_for(
        self, sticky_ids: np.ndarray, nonsticky_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregation weights ν for the two participant buckets.

        ``weight_mode="equal"`` (the Fig. 5 ablation) short-circuits to
        biased ``1/K`` weights; otherwise the *sampler* owns the weights —
        each :class:`~repro.fl.samplers.ClientSampler` returns its own
        unbiasedness correction (Eq. 2 for uniform, Eq. 3 for sticky,
        Horvitz–Thompson for norm-aware sampling), so new sampling
        policies plug in without the server knowing their type.

        Empty buckets come back as empty arrays in the run-level ``dtype``
        (non-empty weights stay float64: they are consumed one scalar at a
        time, and the paper's weight arithmetic is precision-insensitive).
        """
        empty = np.empty(0, dtype=self.dtype)
        if self.config.weight_mode == "equal":
            all_ids = np.concatenate([sticky_ids, nonsticky_ids])
            w = equal_weights(all_ids)
            n_sticky = len(sticky_ids)
            return (
                w[:n_sticky] if n_sticky else empty,
                w[n_sticky:] if len(nonsticky_ids) else empty,
            )
        nu_s, nu_r = self.sampler.aggregation_weights(
            self.p, sticky_ids, nonsticky_ids
        )
        return (
            nu_s if len(nu_s) else empty,
            nu_r if len(nu_r) else empty,
        )

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self) -> float:
        """Top-k accuracy of the current global model on the test set."""
        cfg = self.config
        dataset = cfg.dataset
        self.view.set_flat(self.global_params)
        if self.view.num_buffer:
            self.view.set_buffers_flat(self.global_buffers)
        self.model.eval()
        correct = 0
        total = len(dataset.test_y)
        for start in range(0, total, cfg.eval_batch):
            xb = dataset.test_x[start : start + cfg.eval_batch]
            yb = dataset.test_y[start : start + cfg.eval_batch]
            logits = self.model(xb.astype(self.dtype, copy=False))
            if cfg.eval_top_k == 1:
                correct += int((logits.argmax(axis=1) == yb).sum())
            else:
                top = np.argsort(logits, axis=1)[:, -cfg.eval_top_k :]
                correct += int((top == yb[:, None]).any(axis=1).sum())
        self.model.train()
        return correct / total

    # -- one round ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        """Advance the run by one scheduler round (sync: one Algorithm 1
        round; async: one buffer flush) and return its record."""
        return self.scheduler.run_round(self)

    @property
    def sim_time_s(self) -> float:
        """Cumulative simulated wall-clock, read off the scheduler's
        :class:`~repro.engine.clock.SimClock`."""
        return self.scheduler.clock.now

    # -- lifecycle ----------------------------------------------------------------------
    @property
    def backend(self):
        """The execution backend, created on first use.

        Lazy so that a closed server stays usable: the next ``run_round``
        simply builds a fresh pool.
        """
        if self._backend is None:
            workers = self.config.backend_workers
            if workers is None:
                # at most K clients run per round — never pool wider
                workers = min(self.sampler.k, os.cpu_count() or 1)
            self._backend = create_backend(
                self.config.execution_backend,
                self._worker_spec,
                trainer=self.trainer,
                workers=workers,
            )
        return self._backend

    def close(self) -> None:
        """Release execution-backend resources (pools, shared memory).

        Idempotent; only needed when ``run_round`` is driven manually with
        a parallel backend — :meth:`run` closes automatically.  Further
        training after close is fine: a fresh backend is built on demand.
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        if self.sharding is not None:
            self.sharding.close()

    # -- full run -----------------------------------------------------------------------
    def run(self) -> RunResult:
        cfg = self.config
        result = RunResult(
            meta={
                "strategy": self.strategy.name,
                "model": cfg.model_name,
                "dataset": cfg.dataset.name,
                "d": self.d,
                "n": self.n,
                "k": self.sampler.k,
                "rounds": cfg.rounds,
                "seed": cfg.seed,
                "scheduler": self.scheduler.name,
            }
        )
        try:
            for _ in range(cfg.rounds):
                result.append(self.run_round())
                if (
                    cfg.stop_at_target
                    and cfg.target_accuracy is not None
                    and result.rounds_to_target(
                        cfg.target_accuracy, cfg.accuracy_window
                    )
                    is not None
                ):
                    break
        finally:
            self.close()
        result.meta["sim_time_s"] = self.sim_time_s
        return result


def run_training(config: RunConfig) -> RunResult:
    """Build a server from ``config`` and run it to completion."""
    return FLServer(config).run()
