"""Aggregation weights (Eq. 2 / Eq. 3 / Fig. 5) and BN-buffer aggregation.

FedAvg (Eq. 2) re-weights sampled updates by ``(N / K) · p_i``.  Sticky
sampling over-represents sticky clients, so GlueFL applies inverse-propensity
weights (Eq. 3): ``ν_s = (S / C) · p_i`` for sticky participants and
``ν_r = ((N − S) / (K − C)) · p_i`` for the rest — Theorem 1 shows this
makes the update unbiased.  ``equal_weights`` is the biased ``1/K`` variant
used as the "GlueFL (Equal)" baseline of Fig. 5.

Batch-norm running statistics bypass all of this: Appendix D aggregates
their deltas as an unweighted mean over participants.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "fedavg_weights",
    "sticky_weights",
    "equal_weights",
    "horvitz_thompson_weights",
    "staleness_discounted_weights",
    "aggregate_buffer_deltas",
    "apply_update",
]


def apply_update(params, delta, sharding=None) -> np.ndarray:
    """Return ``params + delta``, shard-by-shard when a runtime is bound.

    The sharded add runs each contiguous coordinate range through
    :func:`repro.sharding.kernels.shard_elementwise_add` — the same
    element-wise IEEE add in the same order, so the result is
    bit-identical to the plain expression.  ``sharding=None`` (the
    default, ``RunConfig.shard_count`` unset) is exactly the seed path.
    """
    if sharding is not None:
        return sharding.elementwise_add(params, delta)
    return params + delta


def fedavg_weights(
    p: np.ndarray, participant_ids: np.ndarray, num_clients: int
) -> np.ndarray:
    """Eq. 2 weights ``(N / K) · p_i`` for uniformly-sampled participants."""
    participant_ids = np.asarray(participant_ids)
    k = len(participant_ids)
    if k == 0:
        return np.empty(0, dtype=np.float64)
    return (num_clients / k) * p[participant_ids]


def sticky_weights(
    p: np.ndarray,
    sticky_ids: np.ndarray,
    nonsticky_ids: np.ndarray,
    group_size: int,
    num_clients: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 3 inverse-propensity weights ``(ν_s, ν_r)`` for the two buckets.

    Uses the *actual* participant counts as C and K−C, which keeps the
    estimate self-normalizing when over-commitment or dropout makes the
    realized counts differ from the nominal configuration.
    """
    sticky_ids = np.asarray(sticky_ids)
    nonsticky_ids = np.asarray(nonsticky_ids)
    c = len(sticky_ids)
    r = len(nonsticky_ids)
    nu_s = (group_size / c) * p[sticky_ids] if c else np.empty(0, dtype=np.float64)
    nu_r = (
        ((num_clients - group_size) / r) * p[nonsticky_ids]
        if r
        else np.empty(0, dtype=np.float64)
    )
    return nu_s, nu_r


def equal_weights(participant_ids: np.ndarray) -> np.ndarray:
    """Biased ``1/K`` weights (the Fig. 5 "GlueFL (Equal)" ablation)."""
    k = len(participant_ids)
    if k == 0:
        return np.empty(0, dtype=np.float64)
    return np.full(k, 1.0 / k, dtype=np.float64)


def horvitz_thompson_weights(
    p: np.ndarray, participant_ids: np.ndarray, inclusion_probs: np.ndarray
) -> np.ndarray:
    """General unbiased correction ``ν_i = p_i / π_i`` for unequal-probability
    sampling (Horvitz & Thompson, 1952).

    ``inclusion_probs`` are the participants' marginal probabilities π_i of
    being drawn; the estimator ``Σ_{i∈S} ν_i Δ_i`` has expectation
    ``Σ_i p_i Δ_i`` for *any* positive π.  Eq. 2 is the special case
    ``π = K/N``; norm-aware sampling (Chen et al., 2020) plugs in its
    water-filled norm-proportional π.
    """
    participant_ids = np.asarray(participant_ids)
    if len(participant_ids) == 0:
        return np.empty(0, dtype=np.float64)
    pi = np.asarray(inclusion_probs, dtype=np.float64)
    if len(pi) != len(participant_ids):
        raise ValueError("one inclusion probability per participant required")
    if (pi <= 0).any():
        raise ValueError("inclusion probabilities must be positive")
    return p[participant_ids] / pi


def staleness_discounted_weights(
    staleness: np.ndarray, alpha: float
) -> np.ndarray:
    """FedBuff-style normalized weights ``s(τ) = (1 + τ)^(−α)``.

    ``staleness`` counts global updates applied between a client's dispatch
    and its arrival; ``alpha = 0`` degenerates to an unweighted mean over
    the buffer.  Used by the async/buffered scheduler.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    s = (1.0 + np.asarray(staleness, dtype=np.float64)) ** (-alpha)
    if len(s) == 0:
        return s
    return s / s.sum()


def aggregate_buffer_deltas(buffer_deltas: Sequence[np.ndarray]) -> np.ndarray:
    """Appendix D: unweighted mean of non-trainable (BN statistic) deltas.

    Half-precision runs accumulate in float32 (K small terms summed in a
    2-byte float would lose whole contributions to rounding) and round the
    mean back to the delta dtype once; float32/float64 runs accumulate in
    their own dtype, bit-identical to the seed.
    """
    if not buffer_deltas:
        raise ValueError("no buffer deltas to aggregate")
    dt = buffer_deltas[0].dtype
    acc_dt = np.dtype(np.float32) if dt.itemsize <= 2 else dt
    acc = np.zeros(buffer_deltas[0].shape, dtype=acc_dt)
    for delta in buffer_deltas:
        acc += delta
    mean = acc / len(buffer_deltas)
    return mean.astype(dt) if acc_dt != dt else mean
